package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hdc"
	"repro/internal/infer"
	"repro/internal/lat"
	"repro/internal/tensor"
)

// Probe is one classification request: a single embedding in the dense
// and/or packed representation. Which representation is required depends
// on the backend behind the coalescer: dense-consuming backends (float,
// crossbar) need Dense; the packed-binary backend takes either (a dense
// probe is sign-packed at admission). The coalescer copies what it
// retains at admission, so the caller may reuse the probe's buffers the
// moment Classify returns — even on context cancellation.
type Probe struct {
	Dense  []float32
	Packed *hdc.Binary
}

// request is one admitted probe waiting for its batch to flush.
type request struct {
	dense  []float32
	packed *hdc.Binary
	k      int
	ctx    context.Context // caller's deadline, checked again at drain
	enq    time.Time       // admission time: queue-wait stage timing
	out    chan reply      // buffered (1): the flusher never blocks on a gone caller
}

type reply struct {
	res   infer.Result
	epoch uint64 // class-memory epoch of the querier that served the batch
	err   error
}

// querierBox wraps the swappable querier behind one pointer so a hot
// reload can atomically publish a new engine/router while in-flight
// batches finish on the old one.
type querierBox struct{ q Querier }

// Coalescer merges single-probe Classify calls into engine batches under
// a MaxBatch/adaptive-delay policy and demultiplexes the per-probe
// results back to the waiting callers. One goroutine owns admission;
// each flushed batch executes on its own goroutine against the shared
// concurrency-safe Querier — a local infer.Engine or a dist.Router over
// shard processes — so a slow batch never blocks admission of the next.
//
// Overload behavior: with Config.Watermark set, a request arriving
// while the admission queue already holds Watermark undispatched probes
// is shed immediately with ErrOverloaded (never queued, never executed),
// keeping the queue depth — and therefore the queueing latency of every
// accepted request — bounded no matter the offered load. Requests whose
// caller context is already done when their batch drains are dropped
// before any engine/shard work is spent on them.
type Coalescer struct {
	cur      atomic.Pointer[querierBox]
	cfg      Config
	needs    infer.Representation
	dim      int
	reqs     chan *request
	loopDone chan struct{}

	mu        sync.RWMutex // guards closed vs. senders on reqs
	closed    bool
	exec      sync.WaitGroup // in-flight batch executions
	execSlots chan struct{}  // bounds concurrent executions (nil: unbounded)
	asm       sync.Pool      // *batchScratch: pooled input-assembly buffers

	// serving counters (atomics; largestBatch guarded by statMu)
	requests, rejected          atomic.Uint64
	shed, cancelled             atomic.Uint64
	batches, full, timer, drain atomic.Uint64
	probesServed                atomic.Uint64
	inFlight                    atomic.Int64
	depth                       atomic.Int64 // admitted, not yet dispatched
	curDelay                    atomic.Int64 // last armed flush delay (ns)
	statMu                      sync.Mutex
	largestBatch                int

	// per-stage latency histograms (lock-free; see internal/lat)
	queueWait lat.Hist
	readout   lat.Hist
}

// NewCoalescer wraps a shared querier — a local infer.Engine or a
// dist.Router — with a micro-batching front. The zero Config takes the
// defaults (MaxBatch 32, MaxDelay 2ms, blocking backpressure).
func NewCoalescer(q Querier, cfg Config) *Coalescer {
	cfg = cfg.withDefaults()
	c := &Coalescer{
		cfg:      cfg,
		needs:    q.Requires(),
		dim:      q.Dim(),
		reqs:     make(chan *request, cfg.Queue),
		loopDone: make(chan struct{}),
	}
	c.cur.Store(&querierBox{q: q})
	c.curDelay.Store(int64(cfg.MaxDelay))
	if cfg.MaxInFlight > 0 {
		c.execSlots = make(chan struct{}, cfg.MaxInFlight)
	}
	c.asm.New = func() any { return new(batchScratch) }
	go c.loop()
	return c
}

// Querier returns the underlying shared querier (the current one, under
// hot reload).
func (c *Coalescer) Querier() Querier { return c.cur.Load().q }

// SwapQuerier atomically replaces the querier behind the coalescer —
// the hot-reload path: batches dispatched before the swap finish on the
// old querier, batches dispatched after it run on the new one, and no
// request ever observes a half-swapped state. The new querier must
// consume the same probe representation at the same dimensionality
// (admission normalized every queued probe to that geometry already);
// anything else returns ErrIncompatibleSwap and leaves the old querier
// serving. The class count may grow but never shrink: monotonic growth
// is exactly a live-enrollment epoch publish flowing through the swap
// seam, while a shrink would dangle class indices that in-flight
// responses and caches already reference.
func (c *Coalescer) SwapQuerier(q Querier) error {
	if q.Dim() != c.dim {
		return fmt.Errorf("%w: new querier has d=%d, coalescer admits d=%d",
			ErrIncompatibleSwap, q.Dim(), c.dim)
	}
	if q.Requires() != c.needs {
		return fmt.Errorf("%w: new querier consumes representation %v, coalescer admits %v",
			ErrIncompatibleSwap, q.Requires(), c.needs)
	}
	if have := c.cur.Load().q.Classes(); q.Classes() < have {
		return fmt.Errorf("%w: new querier has %d classes, coalescer serves %d (class count may only grow)",
			ErrIncompatibleSwap, q.Classes(), have)
	}
	c.cur.Store(&querierBox{q: q})
	return nil
}

// Config returns the effective admission policy.
func (c *Coalescer) Config() Config { return c.cfg }

// Classify submits one probe and blocks until its batch has been scored,
// returning the probe's top-k hits in engine order (score descending,
// ties by ascending class index). k < 1 defaults to 1; k above the class
// count is clamped. Classify is safe for any number of concurrent
// callers — that is the point: callers bring single probes, the
// coalescer recovers batched throughput underneath them.
//
// Under overload (Config.Watermark exceeded) Classify fails fast with
// ErrOverloaded instead of queuing.
func (c *Coalescer) Classify(ctx context.Context, p Probe, k int) (infer.Result, error) {
	res, _, err := c.ClassifyEpoch(ctx, p, k)
	return res, err
}

// Epoch reports the class-memory epoch of the querier currently behind
// the coalescer (0 when the querier predates live enrollment). The
// /stats path reads it; response tagging reads the per-batch value
// instead, from the same querier box that served the batch.
func (c *Coalescer) Epoch() uint64 { return queryEpoch(c.cur.Load().q) }

// queryEpoch extracts the optional epoch stamp from a querier — both
// *infer.Engine and *dist.Router carry one; anything else reports the
// frozen epoch 0.
func queryEpoch(q Querier) uint64 {
	if e, ok := q.(interface{ Epoch() uint64 }); ok {
		return e.Epoch()
	}
	return 0
}

// ClassifyEpoch is Classify also reporting the class-memory epoch that
// served the probe. The epoch is read from the same atomically loaded
// querier box that executed the batch, so the tag can never mix with a
// ranking from a different epoch — the contract the distributed chaos
// test checks byte-for-byte against a per-epoch oracle.
func (c *Coalescer) ClassifyEpoch(ctx context.Context, p Probe, k int) (infer.Result, uint64, error) {
	if k < 1 {
		k = 1
	}
	r := &request{dense: p.Dense, packed: p.Packed, k: k, ctx: ctx, out: make(chan reply, 1)}
	if err := c.admitProbe(r); err != nil {
		c.rejected.Add(1)
		return infer.Result{}, 0, err
	}

	// Load shedding: bound the admission queue depth. The increment is
	// optimistic — concurrent arrivals may transiently overshoot the
	// watermark by the number of in-flight Classify calls racing here,
	// each of which immediately backs out — so the steady-state depth
	// the drain loop observes never exceeds the watermark.
	if c.cfg.Watermark > 0 {
		if c.depth.Add(1) > int64(c.cfg.Watermark) {
			c.depth.Add(-1)
			c.shed.Add(1)
			return infer.Result{}, 0, ErrOverloaded
		}
	} else {
		c.depth.Add(1)
	}
	r.enq = time.Now()

	// Enqueue under a read lock so Close cannot close reqs mid-send.
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		c.depth.Add(-1)
		c.rejected.Add(1)
		return infer.Result{}, 0, ErrClosed
	}
	select {
	case c.reqs <- r:
		c.mu.RUnlock()
	case <-ctx.Done():
		c.mu.RUnlock()
		c.depth.Add(-1)
		c.rejected.Add(1)
		return infer.Result{}, 0, ctx.Err()
	}
	c.requests.Add(1)

	select {
	case rep := <-r.out:
		return rep.res, rep.epoch, rep.err
	case <-ctx.Done():
		// The flusher delivers into the buffered channel (or drops the
		// request at drain time, now that it can see ctx is done); either
		// way the reply is simply discarded.
		return infer.Result{}, 0, ctx.Err()
	}
}

// admitProbe validates the probe against the backend's representation
// and dimensionality, normalizing it to the batch representation (dense
// probes for packed backends are sign-packed here, on the caller's
// goroutine, so the admission loop stays cheap). The retained probe is
// always a private copy: a caller may reuse its buffer the moment
// Classify returns — including on context cancellation, when the flush
// still executes after the caller has moved on.
func (c *Coalescer) admitProbe(r *request) error {
	switch c.needs {
	case infer.RepDense:
		if r.dense == nil {
			return fmt.Errorf("%w: backend %q consumes dense probes, none provided",
				ErrBadProbe, c.Querier().Name())
		}
		if len(r.dense) != c.dim {
			return fmt.Errorf("%w: embedding has %d components, backend %q expects %d",
				ErrBadProbe, len(r.dense), c.Querier().Name(), c.dim)
		}
		r.dense = append([]float32(nil), r.dense...)
	case infer.RepPacked:
		if r.packed == nil {
			if r.dense == nil {
				return fmt.Errorf("%w: no probe provided", ErrBadProbe)
			}
			if len(r.dense) != c.dim {
				return fmt.Errorf("%w: embedding has %d components, backend %q expects %d",
					ErrBadProbe, len(r.dense), c.Querier().Name(), c.dim)
			}
			r.packed = infer.PackSign(tensor.FromSlice(r.dense, 1, c.dim))[0]
		} else if r.packed.Dim() != c.dim {
			return fmt.Errorf("%w: packed probe has dim %d, backend %q expects %d",
				ErrBadProbe, r.packed.Dim(), c.Querier().Name(), c.dim)
		} else {
			r.packed = r.packed.Clone()
		}
	}
	return nil
}

// Close stops admission, flushes any pending probes, and waits for
// in-flight batches to finish. Subsequent Classify calls return
// ErrClosed. Close is idempotent.
func (c *Coalescer) Close() {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	if !already {
		close(c.reqs)
	}
	c.mu.Unlock()
	<-c.loopDone
	c.exec.Wait()
}

// Stats snapshots the serving counters and stage histograms.
func (c *Coalescer) Stats() Stats {
	s := Stats{
		Requests:     c.requests.Load(),
		Rejected:     c.rejected.Load(),
		Shed:         c.shed.Load(),
		Cancelled:    c.cancelled.Load(),
		Batches:      c.batches.Load(),
		FullFlushes:  c.full.Load(),
		TimerFlushes: c.timer.Load(),
		DrainFlushes: c.drain.Load(),
		InFlight:     c.inFlight.Load(),
		QueueDepth:   c.depth.Load(),
		CurDelay:     time.Duration(c.curDelay.Load()).String(),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(c.probesServed.Load()) / float64(s.Batches)
	}
	qw, ro := c.queueWait.Snapshot(), c.readout.Snapshot()
	s.QueueWait, s.Readout = &qw, &ro
	c.statMu.Lock()
	s.LargestBatch = c.largestBatch
	c.statMu.Unlock()
	return s
}

// flush reasons, recorded in Stats.
const (
	flushFull = iota
	flushTimer
	flushDrain
)

// rateEWMAAlpha weights the inter-arrival EWMA the adaptive delay is
// computed from: ~0.2 reacts within a handful of requests without
// whipsawing on a single burst.
const rateEWMAAlpha = 0.2

// loop owns admission: it gathers requests until the batch fills or the
// adaptive delay deadline fires, then hands the batch to an executor
// goroutine.
//
// The flush timer adapts to the observed arrival rate: an EWMA over
// inter-arrival intervals estimates how long the current batch needs to
// fill, and the timer is armed to that estimate clamped to
// [MinDelay, MaxDelay]. Under heavy load the estimate is tiny — a lone
// probe is not held hostage to a MaxDelay that traffic will beat anyway,
// and when traffic stalls mid-batch the short timer bounds the damage.
// When idle the estimate is huge and clamps to MaxDelay, the legacy
// behavior. MaxDelay therefore stays the hard admission-latency bound.
func (c *Coalescer) loop() {
	defer close(c.loopDone)
	pending := make([]*request, 0, c.cfg.MaxBatch)
	var delay *time.Timer
	var deadline <-chan time.Time

	var lastArrival time.Time
	ewmaGap := float64(c.cfg.MaxDelay) // pessimistic start: behave like the fixed policy

	observe := func(r *request) {
		if !lastArrival.IsZero() {
			gap := float64(r.enq.Sub(lastArrival))
			if gap < 0 {
				gap = 0
			}
			ewmaGap += rateEWMAAlpha * (gap - ewmaGap)
		}
		lastArrival = r.enq
	}
	adaptiveDelay := func() time.Duration {
		remaining := c.cfg.MaxBatch - len(pending)
		if remaining < 1 {
			remaining = 1
		}
		d := time.Duration(ewmaGap * float64(remaining))
		if d < c.cfg.MinDelay {
			d = c.cfg.MinDelay
		}
		if d > c.cfg.MaxDelay {
			d = c.cfg.MaxDelay
		}
		return d
	}

	disarm := func() {
		if delay != nil {
			delay.Stop()
			delay = nil
			deadline = nil
		}
	}
	flush := func(reason int) {
		if len(pending) == 0 {
			return
		}
		disarm()
		batch := pending
		pending = make([]*request, 0, c.cfg.MaxBatch)
		c.dispatch(batch, reason)
	}

	for {
		select {
		case r, ok := <-c.reqs:
			if !ok {
				flush(flushDrain)
				return
			}
			observe(r)
			pending = append(pending, r)
			// Greedy drain: pull everything already queued without going
			// back through the scheduler, up to the batch cap.
			for len(pending) < c.cfg.MaxBatch {
				select {
				case r, ok := <-c.reqs:
					if !ok {
						flush(flushDrain)
						return
					}
					observe(r)
					pending = append(pending, r)
					continue
				default:
				}
				break
			}
			if len(pending) >= c.cfg.MaxBatch {
				flush(flushFull)
			} else if delay == nil {
				d := adaptiveDelay()
				c.curDelay.Store(int64(d))
				delay = time.NewTimer(d)
				deadline = delay.C
			}
		case <-deadline:
			delay, deadline = nil, nil
			flush(flushTimer)
		}
	}
}

// dispatch records stats for a flushed batch and executes it on its own
// goroutine against the shared engine. With MaxInFlight set, it blocks
// the admission loop until an execution slot frees — that is the
// backpressure chain that turns a slow backend into queue depth (and
// queue depth, at the watermark, into shedding) instead of into an
// unbounded pile of concurrent batches.
func (c *Coalescer) dispatch(batch []*request, reason int) {
	if c.execSlots != nil {
		c.execSlots <- struct{}{}
	}
	c.depth.Add(-int64(len(batch)))
	c.batches.Add(1)
	c.probesServed.Add(uint64(len(batch)))
	switch reason {
	case flushFull:
		c.full.Add(1)
	case flushTimer:
		c.timer.Add(1)
	case flushDrain:
		c.drain.Add(1)
	}
	c.statMu.Lock()
	if len(batch) > c.largestBatch {
		c.largestBatch = len(batch)
	}
	c.statMu.Unlock()

	c.exec.Add(1)
	c.inFlight.Add(1)
	go func() {
		defer c.exec.Done()
		defer c.inFlight.Add(-1)
		if c.execSlots != nil {
			defer func() { <-c.execSlots }()
		}
		c.execute(batch)
	}()
}

// execute drops requests whose caller is already gone, assembles the
// engine batch in the backend's representation, queries at the largest
// k any caller asked for, and demultiplexes the per-probe results.
//
//hdc:hotpath
func (c *Coalescer) execute(batch []*request) {
	// Deadline propagation: a request whose context expired while it
	// waited in the queue gets no embed/readout/shard work spent on it —
	// its caller has already returned. Filter in place before sizing the
	// engine batch.
	now := time.Now()
	live := batch[:0]
	for _, r := range batch {
		if r.ctx != nil && r.ctx.Err() != nil {
			c.cancelled.Add(1)
			r.out <- reply{err: r.ctx.Err()}
			continue
		}
		c.queueWait.Observe(now.Sub(r.enq))
		live = append(live, r) //hdc:allow hotpathalloc live filters batch in place, so capacity is batch's backing array
	}
	if len(live) == 0 {
		return
	}

	kmax := 1
	for _, r := range live {
		if r.k > kmax {
			kmax = r.k
		}
	}

	bs := c.asm.Get().(*batchScratch)
	var eb *infer.Batch
	if c.needs == infer.RepPacked {
		bs.grow(len(live), 0)
		packed := bs.packed[:len(live)]
		for i, r := range live {
			packed[i] = r.packed
		}
		eb = infer.PackedBatch(packed)
	} else {
		bs.grow(0, len(live)*c.dim)
		dense := tensor.FromSlice(bs.flat[:len(live)*c.dim], len(live), c.dim)
		for i, r := range live {
			copy(dense.Row(i), r.dense)
		}
		eb = infer.DenseBatch(dense)
	}

	// One atomic load serves the whole batch: the ranking and its epoch
	// tag always come from the same querier box, even mid-swap. Queriers
	// whose epoch can advance underneath a published instance (the dist
	// router enrolls live) return the epoch with the ranking, pinned to
	// the same class-memory state; for the rest (engines are built at a
	// fixed epoch) reading the stamp after the query cannot race.
	box := c.cur.Load()
	start := time.Now()
	var results []infer.Result
	var epoch uint64
	var err error
	if eq, ok := box.q.(interface {
		TryQueryEpoch(*infer.Batch, int) ([]infer.Result, uint64, error)
	}); ok {
		results, epoch, err = eq.TryQueryEpoch(eb, kmax)
	} else {
		results, err = box.q.TryQuery(eb, kmax)
		epoch = queryEpoch(box.q)
	}
	c.readout.Observe(time.Since(start))
	// The querier reads the batch synchronously and result storage is
	// fresh (TryQuery), so the assembly buffers are reusable as soon as
	// the call returns — before the replies are even delivered.
	c.putScratch(bs)
	if err != nil {
		for _, r := range live {
			r.out <- reply{err: err}
		}
		return
	}
	for i, r := range live {
		top := results[i].TopK
		if r.k < len(top) {
			top = top[:r.k]
		}
		r.out <- reply{res: infer.Result{TopK: top}, epoch: epoch}
	}
}

// batchScratch holds one execute call's input-assembly buffers (the
// pointer-gather slice for packed backends, the dense staging matrix for
// float backends). Pooled on Coalescer.asm so steady-state batches
// assemble without allocating, while concurrent executes each check out
// their own instance.
type batchScratch struct {
	packed []*hdc.Binary
	flat   []float32
}

//hdc:coldpath amortized assembly-scratch growth; the steady state reuses capacity
func (b *batchScratch) grow(nPacked, nFlat int) {
	if cap(b.packed) < nPacked {
		b.packed = make([]*hdc.Binary, nPacked)
	}
	if cap(b.flat) < nFlat {
		b.flat = make([]float32, nFlat)
	}
}

// putScratch drops the probe pointers (so pooled scratch never pins a
// caller's binary past the batch) and returns bs to the pool.
func (c *Coalescer) putScratch(bs *batchScratch) {
	for i := range bs.packed {
		bs.packed[i] = nil
	}
	c.asm.Put(bs)
}
