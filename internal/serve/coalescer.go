package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hdc"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// Probe is one classification request: a single embedding in the dense
// and/or packed representation. Which representation is required depends
// on the backend behind the coalescer: dense-consuming backends (float,
// crossbar) need Dense; the packed-binary backend takes either (a dense
// probe is sign-packed at admission). The coalescer copies what it
// retains at admission, so the caller may reuse the probe's buffers the
// moment Classify returns — even on context cancellation.
type Probe struct {
	Dense  []float32
	Packed *hdc.Binary
}

// request is one admitted probe waiting for its batch to flush.
type request struct {
	dense  []float32
	packed *hdc.Binary
	k      int
	out    chan reply // buffered (1): the flusher never blocks on a gone caller
}

type reply struct {
	res infer.Result
	err error
}

// Coalescer merges single-probe Classify calls into engine batches under
// a MaxBatch/MaxDelay policy and demultiplexes the per-probe results
// back to the waiting callers. One goroutine owns admission; each
// flushed batch executes on its own goroutine against the shared
// concurrency-safe Querier — a local infer.Engine or a dist.Router over
// shard processes — so a slow batch never blocks admission of the next.
type Coalescer struct {
	q        Querier
	cfg      Config
	needs    infer.Representation
	dim      int
	reqs     chan *request
	loopDone chan struct{}

	mu     sync.RWMutex // guards closed vs. senders on reqs
	closed bool
	exec   sync.WaitGroup // in-flight batch executions
	asm    sync.Pool      // *batchScratch: pooled input-assembly buffers

	// serving counters (atomics; largestBatch guarded by statMu)
	requests, rejected          atomic.Uint64
	batches, full, timer, drain atomic.Uint64
	probesServed                atomic.Uint64
	inFlight                    atomic.Int64
	statMu                      sync.Mutex
	largestBatch                int
}

// NewCoalescer wraps a shared querier — a local infer.Engine or a
// dist.Router — with a micro-batching front. The zero Config takes the
// defaults (MaxBatch 32, MaxDelay 2ms).
func NewCoalescer(q Querier, cfg Config) *Coalescer {
	cfg = cfg.withDefaults()
	c := &Coalescer{
		q:        q,
		cfg:      cfg,
		needs:    q.Requires(),
		dim:      q.Dim(),
		reqs:     make(chan *request, cfg.Queue),
		loopDone: make(chan struct{}),
	}
	c.asm.New = func() any { return new(batchScratch) }
	go c.loop()
	return c
}

// Querier returns the underlying shared querier.
func (c *Coalescer) Querier() Querier { return c.q }

// Config returns the effective admission policy.
func (c *Coalescer) Config() Config { return c.cfg }

// Classify submits one probe and blocks until its batch has been scored,
// returning the probe's top-k hits in engine order (score descending,
// ties by ascending class index). k < 1 defaults to 1; k above the class
// count is clamped. Classify is safe for any number of concurrent
// callers — that is the point: callers bring single probes, the
// coalescer recovers batched throughput underneath them.
func (c *Coalescer) Classify(ctx context.Context, p Probe, k int) (infer.Result, error) {
	if k < 1 {
		k = 1
	}
	r := &request{dense: p.Dense, packed: p.Packed, k: k, out: make(chan reply, 1)}
	if err := c.admitProbe(r); err != nil {
		c.rejected.Add(1)
		return infer.Result{}, err
	}

	// Enqueue under a read lock so Close cannot close reqs mid-send.
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		c.rejected.Add(1)
		return infer.Result{}, ErrClosed
	}
	select {
	case c.reqs <- r:
		c.mu.RUnlock()
	case <-ctx.Done():
		c.mu.RUnlock()
		c.rejected.Add(1)
		return infer.Result{}, ctx.Err()
	}
	c.requests.Add(1)

	select {
	case rep := <-r.out:
		return rep.res, rep.err
	case <-ctx.Done():
		// The flusher will still deliver into the buffered channel; the
		// reply is simply dropped.
		return infer.Result{}, ctx.Err()
	}
}

// admitProbe validates the probe against the backend's representation
// and dimensionality, normalizing it to the batch representation (dense
// probes for packed backends are sign-packed here, on the caller's
// goroutine, so the admission loop stays cheap). The retained probe is
// always a private copy: a caller may reuse its buffer the moment
// Classify returns — including on context cancellation, when the flush
// still executes after the caller has moved on.
func (c *Coalescer) admitProbe(r *request) error {
	switch c.needs {
	case infer.RepDense:
		if r.dense == nil {
			return fmt.Errorf("%w: backend %q consumes dense probes, none provided",
				ErrBadProbe, c.q.Name())
		}
		if len(r.dense) != c.dim {
			return fmt.Errorf("%w: embedding has %d components, backend %q expects %d",
				ErrBadProbe, len(r.dense), c.q.Name(), c.dim)
		}
		r.dense = append([]float32(nil), r.dense...)
	case infer.RepPacked:
		if r.packed == nil {
			if r.dense == nil {
				return fmt.Errorf("%w: no probe provided", ErrBadProbe)
			}
			if len(r.dense) != c.dim {
				return fmt.Errorf("%w: embedding has %d components, backend %q expects %d",
					ErrBadProbe, len(r.dense), c.q.Name(), c.dim)
			}
			r.packed = infer.PackSign(tensor.FromSlice(r.dense, 1, c.dim))[0]
		} else if r.packed.Dim() != c.dim {
			return fmt.Errorf("%w: packed probe has dim %d, backend %q expects %d",
				ErrBadProbe, r.packed.Dim(), c.q.Name(), c.dim)
		} else {
			r.packed = r.packed.Clone()
		}
	}
	return nil
}

// Close stops admission, flushes any pending probes, and waits for
// in-flight batches to finish. Subsequent Classify calls return
// ErrClosed. Close is idempotent.
func (c *Coalescer) Close() {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	if !already {
		close(c.reqs)
	}
	c.mu.Unlock()
	<-c.loopDone
	c.exec.Wait()
}

// Stats snapshots the serving counters.
func (c *Coalescer) Stats() Stats {
	s := Stats{
		Requests:     c.requests.Load(),
		Rejected:     c.rejected.Load(),
		Batches:      c.batches.Load(),
		FullFlushes:  c.full.Load(),
		TimerFlushes: c.timer.Load(),
		DrainFlushes: c.drain.Load(),
		InFlight:     c.inFlight.Load(),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(c.probesServed.Load()) / float64(s.Batches)
	}
	c.statMu.Lock()
	s.LargestBatch = c.largestBatch
	c.statMu.Unlock()
	return s
}

// flush reasons, recorded in Stats.
const (
	flushFull = iota
	flushTimer
	flushDrain
)

// loop owns admission: it gathers requests until the batch fills or the
// delay deadline fires, then hands the batch to an executor goroutine.
func (c *Coalescer) loop() {
	defer close(c.loopDone)
	pending := make([]*request, 0, c.cfg.MaxBatch)
	var delay *time.Timer
	var deadline <-chan time.Time

	disarm := func() {
		if delay != nil {
			delay.Stop()
			delay = nil
			deadline = nil
		}
	}
	flush := func(reason int) {
		if len(pending) == 0 {
			return
		}
		disarm()
		batch := pending
		pending = make([]*request, 0, c.cfg.MaxBatch)
		c.dispatch(batch, reason)
	}

	for {
		select {
		case r, ok := <-c.reqs:
			if !ok {
				flush(flushDrain)
				return
			}
			pending = append(pending, r)
			// Greedy drain: pull everything already queued without going
			// back through the scheduler, up to the batch cap.
			for len(pending) < c.cfg.MaxBatch {
				select {
				case r, ok := <-c.reqs:
					if !ok {
						flush(flushDrain)
						return
					}
					pending = append(pending, r)
					continue
				default:
				}
				break
			}
			if len(pending) >= c.cfg.MaxBatch {
				flush(flushFull)
			} else if delay == nil {
				delay = time.NewTimer(c.cfg.MaxDelay)
				deadline = delay.C
			}
		case <-deadline:
			delay, deadline = nil, nil
			flush(flushTimer)
		}
	}
}

// dispatch records stats for a flushed batch and executes it on its own
// goroutine against the shared engine.
func (c *Coalescer) dispatch(batch []*request, reason int) {
	c.batches.Add(1)
	c.probesServed.Add(uint64(len(batch)))
	switch reason {
	case flushFull:
		c.full.Add(1)
	case flushTimer:
		c.timer.Add(1)
	case flushDrain:
		c.drain.Add(1)
	}
	c.statMu.Lock()
	if len(batch) > c.largestBatch {
		c.largestBatch = len(batch)
	}
	c.statMu.Unlock()

	c.exec.Add(1)
	c.inFlight.Add(1)
	go func() {
		defer c.exec.Done()
		defer c.inFlight.Add(-1)
		c.execute(batch)
	}()
}

// execute assembles the engine batch in the backend's representation,
// queries at the largest k any caller asked for, and demultiplexes the
// per-probe results.
//
//hdc:hotpath
func (c *Coalescer) execute(batch []*request) {
	kmax := 1
	for _, r := range batch {
		if r.k > kmax {
			kmax = r.k
		}
	}

	bs := c.asm.Get().(*batchScratch)
	var eb *infer.Batch
	if c.needs == infer.RepPacked {
		bs.grow(len(batch), 0)
		packed := bs.packed[:len(batch)]
		for i, r := range batch {
			packed[i] = r.packed
		}
		eb = infer.PackedBatch(packed)
	} else {
		bs.grow(0, len(batch)*c.dim)
		dense := tensor.FromSlice(bs.flat[:len(batch)*c.dim], len(batch), c.dim)
		for i, r := range batch {
			copy(dense.Row(i), r.dense)
		}
		eb = infer.DenseBatch(dense)
	}

	results, err := c.q.TryQuery(eb, kmax)
	// The querier reads the batch synchronously and result storage is
	// fresh (TryQuery), so the assembly buffers are reusable as soon as
	// the call returns — before the replies are even delivered.
	c.putScratch(bs)
	if err != nil {
		for _, r := range batch {
			r.out <- reply{err: err}
		}
		return
	}
	for i, r := range batch {
		top := results[i].TopK
		if r.k < len(top) {
			top = top[:r.k]
		}
		r.out <- reply{res: infer.Result{TopK: top}}
	}
}

// batchScratch holds one execute call's input-assembly buffers (the
// pointer-gather slice for packed backends, the dense staging matrix for
// float backends). Pooled on Coalescer.asm so steady-state batches
// assemble without allocating, while concurrent executes each check out
// their own instance.
type batchScratch struct {
	packed []*hdc.Binary
	flat   []float32
}

//hdc:coldpath amortized assembly-scratch growth; the steady state reuses capacity
func (b *batchScratch) grow(nPacked, nFlat int) {
	if cap(b.packed) < nPacked {
		b.packed = make([]*hdc.Binary, nPacked)
	}
	if cap(b.flat) < nFlat {
		b.flat = make([]float32, nFlat)
	}
}

// putScratch drops the probe pointers (so pooled scratch never pins a
// caller's binary past the batch) and returns bs to the pool.
func (c *Coalescer) putScratch(bs *batchScratch) {
	for i := range bs.packed {
		bs.packed[i] = nil
	}
	c.asm.Put(bs)
}
