package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// TestCoalescerFrontsRouter is the Querier-seam contract: the same
// micro-batching front over a dist.Router must answer exactly what it
// answers over the local engine — through Classify and through the HTTP
// handler — with the HTTP layer none the wiser about the shard fan-out.
func TestCoalescerFrontsRouter(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const classes, d = 45, 32
	phi := tensor.New(classes, d)
	for i := range phi.Data {
		phi.Data[i] = rng.Float32()*2 - 1
	}
	labels := make([]string, classes)
	for c := range labels {
		labels[c] = fmt.Sprintf("c%02d", c)
	}
	backend := infer.NewFloatBackend(phi, labels, 0.05)
	local := infer.New(backend)

	// Three single-slab loopback shard processes.
	layout := dist.Layout{Classes: classes, Dim: d}
	for _, r := range infer.SplitRanges(classes, 3) {
		eng, err := infer.NewChecked(infer.NewRangeBackend(backend, r[0], r[1]))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := dist.NewShardServer([]dist.Slab{{Base: r[0], Engine: eng}})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		layout.Shards = append(layout.Shards, dist.ShardSpec{Range: r, Replicas: []string{ln.Addr().String()}})
	}
	router, err := dist.NewRouter(layout, dist.RouterConfig{ShardTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(router.Close)

	coLocal := NewCoalescer(local, Config{MaxDelay: time.Millisecond})
	coDist := NewCoalescer(router, Config{MaxDelay: time.Millisecond})
	t.Cleanup(coLocal.Close)
	t.Cleanup(coDist.Close)

	probe := make([]float32, d)
	for i := range probe {
		probe[i] = rng.Float32()*2 - 1
	}
	want, err := coLocal.Classify(context.Background(), Probe{Dense: probe}, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coDist.Classify(context.Background(), Probe{Dense: probe}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("coalesced distributed result diverged:\n got %+v\nwant %+v", got, want)
	}

	// And through the HTTP surface.
	reg := NewRegistry()
	if err := reg.Register("float", coDist); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(reg))
	t.Cleanup(ts.Close)
	body, _ := json.Marshal(ClassifyRequest{K: 5, Embedding: probe})
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cr ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Model != backend.Name() {
		t.Fatalf("model=%q want %q", cr.Model, backend.Name())
	}
	if len(cr.TopK) != len(want.TopK) {
		t.Fatalf("topk=%d want %d", len(cr.TopK), len(want.TopK))
	}
	for i, h := range want.TopK {
		if cr.TopK[i].Class != h.Class || cr.TopK[i].Label != h.Label || cr.TopK[i].Score != h.Score {
			t.Fatalf("hit %d: %+v want %+v", i, cr.TopK[i], h)
		}
	}
}
