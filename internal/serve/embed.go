package serve

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Embedder maps raw per-sample inputs (feature vectors, NCHW images) to
// the dense probe embeddings the engine backends consume — the first
// stage of the end-to-end serving path. Implementations must be safe
// for concurrent callers: the HTTP layer runs one Embed per in-flight
// request on a shared instance.
type Embedder interface {
	// Name labels the embedder in the registry and /healthz.
	Name() string
	// InShape is the per-sample input shape (e.g. [3, H, W] for images).
	InShape() []int
	// OutDim is the embedding dimensionality produced, which must match
	// the backend the embedding is classified against.
	OutDim() int
	// Embed maps inputs [n, InShape...] to embeddings [n, OutDim],
	// returning a caller-owned tensor.
	Embed(x *tensor.Tensor) (*tensor.Tensor, error)
}

// NetEmbedder adapts a frozen network implementing the stateless
// nn.Inferer contract into an Embedder: every Embed checks a Scratch
// out of the shared pool, runs the shared-read inference path, and
// detaches the result. One NetEmbedder serves any number of concurrent
// requests on one frozen network — that is the point of the Infer
// refactor.
type NetEmbedder struct {
	name    string
	net     nn.Inferer
	inShape []int
	outDim  int
}

// NewNetEmbedder wraps net as an embedder expecting per-sample inputs
// of inShape and producing outDim-dimensional embeddings. The network
// must be frozen: nothing may call its training Forward while the
// embedder serves.
//
// When net is a layer graph the frozen-graph compiler can lower
// (nn.Compile), the embedder serves the compiled plan — BatchNorms
// folded into conv weights, bias/ReLU/residual adds fused into GEMM
// write-backs, buffers pre-scheduled — and the plan self-invalidates
// on parameter version bumps. Graphs with unsupported layers fall back
// to the layer-by-layer Infer path unchanged.
func NewNetEmbedder(name string, net nn.Inferer, inShape []int, outDim int) *NetEmbedder {
	if name == "" {
		panic("serve.NewNetEmbedder: empty name")
	}
	if net == nil {
		panic("serve.NewNetEmbedder: nil network")
	}
	if len(inShape) == 0 || outDim <= 0 {
		panic(fmt.Sprintf("serve.NewNetEmbedder: bad geometry in=%v out=%d", inShape, outDim))
	}
	for _, s := range inShape {
		if s <= 0 {
			panic(fmt.Sprintf("serve.NewNetEmbedder: non-positive dimension in %v", inShape))
		}
	}
	if _, already := net.(*nn.CompiledNet); !already {
		if l, ok := net.(nn.Layer); ok {
			// Precompile surfaces lowering errors (and warms the plan for
			// this embedder's geometry) at registration time, so a graph
			// the compiler cannot lower falls back here rather than
			// panicking on the first request.
			if cn, err := nn.Compile(l); err == nil && cn.Precompile(inShape...) == nil {
				net = cn
			}
		}
	}
	return &NetEmbedder{
		name: name, net: net,
		inShape: append([]int(nil), inShape...),
		outDim:  outDim,
	}
}

// Name returns the embedder's registry name.
func (e *NetEmbedder) Name() string { return e.name }

// InShape returns a copy of the expected per-sample input shape.
func (e *NetEmbedder) InShape() []int { return append([]int(nil), e.inShape...) }

// OutDim returns the embedding dimensionality.
func (e *NetEmbedder) OutDim() int { return e.outDim }

// Embed runs the frozen network over inputs [n, InShape...] and returns
// [n, OutDim] embeddings. Safe for concurrent callers.
func (e *NetEmbedder) Embed(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != len(e.inShape)+1 {
		return nil, fmt.Errorf("%w: input rank %d, embedder %q expects [n %v]",
			ErrBadInput, x.Rank(), e.name, e.inShape)
	}
	for i, s := range e.inShape {
		if x.Dim(i+1) != s {
			return nil, fmt.Errorf("%w: input shape %v, embedder %q expects [n %v]",
				ErrBadInput, x.Shape(), e.name, e.inShape)
		}
	}
	sc := nn.GetScratch()
	defer nn.PutScratch(sc)
	y := e.net.Infer(x, sc)
	if y.Rank() != 2 || y.Dim(1) != e.outDim {
		// Not ErrBadInput: the input was valid, the embedder was
		// registered with an out-dim its network does not produce — a
		// server-side configuration error (HTTP maps it to 500).
		return nil, fmt.Errorf("serve: embedder %q misconfigured: network produced %v, declared out dim %d",
			e.name, y.Shape(), e.outDim)
	}
	// Detach from the pooled scratch before it is reclaimed.
	return y.Clone(), nil
}
