package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/infer"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// newTestEmbedder builds a small frozen MLP embedder (Linear→ReLU→Linear,
// auto-compiled into a frozen-graph plan by NewNetEmbedder) matching the
// fixture's probe dimensionality, plus the raw inputs it will embed. The
// source net is returned too so tests can run the legacy Forward path as
// the offline reference — bitwise identical to the compiled plan for
// BN-free graphs.
func newTestEmbedder(d, samples int, seed int64) (*NetEmbedder, *tensor.Tensor) {
	e, _, inputs := newTestEmbedderNet(d, samples, seed)
	return e, inputs
}

func newTestEmbedderNet(d, samples int, seed int64) (*NetEmbedder, *nn.Sequential, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	const in = 24
	net := nn.NewSequential(
		nn.NewLinear(rng, "fc1", in, 32, true),
		nn.NewReLU(),
		nn.NewLinear(rng, "fc2", 32, d, true),
	)
	return NewNetEmbedder("mlp", net, []int{in}, d), net, tensor.Randn(rng, 1, samples, in)
}

func TestNetEmbedderShapesAndErrors(t *testing.T) {
	e, inputs := newTestEmbedder(64, 3, 1)
	out, err := e.Embed(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 3 || out.Dim(1) != 64 {
		t.Fatalf("embed output shape %v, want [3 64]", out.Shape())
	}
	if _, err := e.Embed(tensor.New(2, 7)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("wrong input dim: err = %v, want ErrBadInput", err)
	}
	if _, err := e.Embed(tensor.New(2, 7, 3)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("wrong input rank: err = %v, want ErrBadInput", err)
	}
	// A declared out-dim the network doesn't produce is a server-side
	// configuration error, NOT bad input (HTTP maps it to 500, not 400).
	bad := NewNetEmbedder("bad", e.net, []int{24}, 999)
	if _, err := bad.Embed(inputs); err == nil || errors.Is(err, ErrBadInput) {
		t.Fatalf("misconfigured out-dim: err = %v, want a non-ErrBadInput error", err)
	}
}

func TestRegistryEmbedderTable(t *testing.T) {
	reg := NewRegistry()
	e, _ := newTestEmbedder(32, 1, 2)
	if _, err := reg.Embedder(""); !errors.Is(err, ErrUnknownEmbedder) {
		t.Fatalf("empty registry: err = %v, want ErrUnknownEmbedder", err)
	}
	if err := reg.RegisterEmbedder("mlp", e); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterEmbedder("mlp", e); !errors.Is(err, ErrDuplicateEmbedder) {
		t.Fatalf("duplicate: err = %v, want ErrDuplicateEmbedder", err)
	}
	// Single-embedder shorthand: the empty name resolves.
	got, err := reg.Embedder("")
	if err != nil || got.Name() != "mlp" {
		t.Fatalf("shorthand resolve = (%v, %v)", got, err)
	}
	if names := reg.EmbedderNames(); len(names) != 1 || names[0] != "mlp" {
		t.Fatalf("EmbedderNames = %v", names)
	}
	reg.Close()
	if _, err := reg.Embedder("mlp"); !errors.Is(err, ErrUnknownEmbedder) {
		t.Fatalf("after Close: err = %v, want ErrUnknownEmbedder", err)
	}
}

// TestHTTPEmbedClassifyEndToEndParity is the acceptance round-trip: raw
// inputs served through POST /v1/embed-classify must rank classes
// exactly like the offline path (eval Forward through the same frozen
// net, then a direct engine query) — under concurrent clients.
func TestHTTPEmbedClassifyEndToEndParity(t *testing.T) {
	const classes, d, samples = 13, 64, 16
	f := newFixture(classes, d, 1, 21)
	srv, reg := newTestServer(t, f)
	e, seq, inputs := newTestEmbedderNet(d, samples, 22)
	if err := reg.RegisterEmbedder("mlp", e); err != nil {
		t.Fatal(err)
	}

	// Offline reference: mutating eval Forward (the legacy path) over the
	// same frozen net, then a direct batched engine query. The served
	// embedder runs the compiled plan; for a BN-free MLP the fused
	// epilogues are exact, so the parity below stays bitwise.
	offline := seq.Forward(inputs, false)
	want := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1)).Query(infer.DenseBatch(offline), 3)

	var wg sync.WaitGroup
	errs := make(chan error, samples)
	for p := 0; p < samples; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			body, _ := json.Marshal(EmbedClassifyRequest{
				Model: "float", Embedder: "mlp", K: 3,
				Shape: []int{24}, Input: inputs.Row(p),
			})
			resp, err := http.Post(srv.URL+"/v1/embed-classify", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var er EmbedClassifyResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("sample %d: status %d", p, resp.StatusCode)
				return
			}
			if er.Model != "float" || er.Embedder != "mlp" || len(er.TopK) != 3 {
				errs <- fmt.Errorf("sample %d: response %+v", p, er)
				return
			}
			for i, h := range er.TopK {
				w := want[p].TopK[i]
				if h.Class != w.Class || h.Label != w.Label || math.Abs(h.Score-w.Score) > 1e-12 {
					errs <- fmt.Errorf("sample %d rank %d: (%d, %q, %v), want (%d, %q, %v)",
						p, i, h.Class, h.Label, h.Score, w.Class, w.Label, w.Score)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHTTPEmbedClassifyErrors(t *testing.T) {
	const classes, d = 7, 64
	f := newFixture(classes, d, 1, 23)
	srv, reg := newTestServer(t, f)
	e, inputs := newTestEmbedder(d, 1, 24)
	if err := reg.RegisterEmbedder("mlp", e); err != nil {
		t.Fatal(err)
	}
	post := func(req EmbedClassifyRequest) int {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/v1/embed-classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	in := inputs.Row(0)
	if code := post(EmbedClassifyRequest{Model: "float", Embedder: "nope", Input: in}); code != http.StatusNotFound {
		t.Fatalf("unknown embedder: %d, want 404", code)
	}
	if code := post(EmbedClassifyRequest{Model: "nope", Embedder: "mlp", Input: in}); code != http.StatusNotFound {
		t.Fatalf("unknown model: %d, want 404", code)
	}
	if code := post(EmbedClassifyRequest{Model: "float", Embedder: "mlp", Shape: []int{3, 8}, Input: in}); code != http.StatusBadRequest {
		t.Fatalf("mismatched shape: %d, want 400", code)
	}
	if code := post(EmbedClassifyRequest{Model: "float", Embedder: "mlp", Input: in[:5]}); code != http.StatusBadRequest {
		t.Fatalf("short input: %d, want 400", code)
	}
	if code := post(EmbedClassifyRequest{Model: "float", Embedder: "mlp"}); code != http.StatusBadRequest {
		t.Fatalf("missing input: %d, want 400", code)
	}
}

// TestHTTPHardening pins the request-surface policy across /v1/*: wrong
// methods get 405, non-JSON content types 415, and oversized bodies 413.
func TestHTTPHardening(t *testing.T) {
	const classes, d = 7, 64
	f := newFixture(classes, d, 1, 25)
	srv, reg := newTestServer(t, f)
	e, _ := newTestEmbedder(d, 1, 26)
	if err := reg.RegisterEmbedder("mlp", e); err != nil {
		t.Fatal(err)
	}

	// Wrong method, consistently across the API surface.
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v1/classify"},
		{http.MethodDelete, "/v1/classify"},
		{http.MethodGet, "/v1/embed-classify"},
		{http.MethodPut, "/v1/embed-classify"},
		{http.MethodPost, "/healthz"},
		{http.MethodPost, "/stats"},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}

	// Non-JSON content type.
	for _, path := range []string{"/v1/classify", "/v1/embed-classify"} {
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("POST %s text/plain: status %d, want 415", path, resp.StatusCode)
		}
	}

	// Oversized body: a classify payload past the 1 MiB cap.
	huge := make([]float32, maxClassifyBody) // zeros marshal to ~2 bytes each: ~2 MiB body
	body, _ := json.Marshal(ClassifyRequest{Model: "float", Embedding: huge})
	if len(body) <= maxClassifyBody {
		t.Fatalf("test payload too small to trip the cap: %d bytes", len(body))
	}
	resp, err := http.Post(srv.URL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized classify body: status %d, want 413", resp.StatusCode)
	}
}
