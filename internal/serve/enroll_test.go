package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/classmem"
	"repro/internal/hdc"
	"repro/internal/infer"
)

// protoFromDense sign-packs a dense vector into the binary prototype
// representation, exactly as the enroll hook in cmd/hdcserve does.
func protoFromDense(vec []float32) *hdc.Binary {
	bp := make(hdc.Bipolar, len(vec))
	for i, v := range vec {
		if v < 0 {
			bp[i] = -1
		} else {
			bp[i] = 1
		}
	}
	return hdc.FromBipolar(bp)
}

// enrollQuerier decorates an epoch-tagged engine with the versioned
// store's enrollment counters, the shape cmd/hdcserve registers so
// /stats can surface epoch, enrolled_total, and wal_bytes. The engine
// is embedded (not the Querier interface) so Epoch() stays the
// engine's own build-time stamp: the epoch a ranking is tagged with
// must describe the class memory that produced it, not whatever the
// store has advanced to since.
type enrollQuerier struct {
	*infer.Engine
	store *classmem.Versioned
}

func (e *enrollQuerier) EnrolledTotal() uint64 { return e.store.EnrolledTotal() }
func (e *enrollQuerier) WALBytes() int64       { return e.store.WALBytes() }

// SwapQuerier must accept monotonic class growth — an epoch publish
// flowing through the hot-reload seam — and keep rejecting shrink, so
// an accidental swap back to a stale pre-enrollment engine cannot make
// already-served classes vanish.
func TestCoalescerSwapQuerierGrowth(t *testing.T) {
	const classes, d = 9, 256
	v := classmem.NewVersioned(classes, d, 31)
	b0, err := v.Backend("float")
	if err != nil {
		t.Fatal(err)
	}
	eng0 := infer.New(b0, infer.WithEpoch(v.Epoch()))
	co := NewCoalescer(eng0, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer co.Close()

	probe := v.Snapshot().Mem.Phi.Row(3)
	res, epoch, err := co.ClassifyEpoch(context.Background(), Probe{Dense: probe}, 1)
	if err != nil || epoch != 0 || res.TopK[0].Class != 3 {
		t.Fatalf("pre-enroll: res=%+v epoch=%d err=%v", res, epoch, err)
	}

	// Enroll and swap in the grown engine: accepted, epoch visible.
	if _, err := v.Enroll("grown", protoFromDense(make([]float32, d))); err != nil {
		t.Fatal(err)
	}
	b1, err := v.Backend("float")
	if err != nil {
		t.Fatal(err)
	}
	eng1 := infer.New(b1, infer.WithEpoch(v.Epoch()))
	if err := co.SwapQuerier(eng1); err != nil {
		t.Fatalf("grown swap rejected: %v", err)
	}
	if got := co.Querier().Classes(); got != classes+1 {
		t.Fatalf("classes after grown swap = %d, want %d", got, classes+1)
	}
	if got := co.Epoch(); got != 1 {
		t.Fatalf("coalescer epoch = %d, want 1", got)
	}
	if _, epoch, err = co.ClassifyEpoch(context.Background(), Probe{Dense: probe}, 1); err != nil || epoch != 1 {
		t.Fatalf("post-enroll classify: epoch=%d err=%v", epoch, err)
	}

	// Shrinking back to the stale pre-enrollment engine must fail and
	// leave the grown querier serving.
	if err := co.SwapQuerier(eng0); !errors.Is(err, ErrIncompatibleSwap) {
		t.Fatalf("shrink swap err = %v, want ErrIncompatibleSwap", err)
	}
	if got := co.Epoch(); got != 1 {
		t.Fatalf("epoch after rejected shrink = %d, want 1", got)
	}
}

// End-to-end live enrollment over HTTP: POST /v1/enroll flows through
// the hook into the versioned store, the grown engine is swapped in,
// and subsequent rankings carry the new epoch and can hit the new
// class. Also covers request validation and the hook-less 501.
func TestHTTPEnroll(t *testing.T) {
	const classes, d = 9, 256
	v := classmem.NewVersioned(classes, d, 32)
	reg := NewRegistry()
	t.Cleanup(func() { reg.Close() })
	co := NewCoalescer(mustEpochQuerier(t, v), Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	if err := reg.Register("float", co); err != nil {
		t.Fatal(err)
	}
	hooks := Hooks{Enroll: func(ctx context.Context, req EnrollRequest) (uint64, error) {
		if len(req.Vector) != d {
			return 0, fmt.Errorf("%w: enroll vector has %d components, want %d", ErrBadInput, len(req.Vector), d)
		}
		ep, err := v.Enroll(req.Label, protoFromDense(req.Vector))
		if err != nil {
			return 0, err
		}
		return ep, co.SwapQuerier(mustEpochQuerier(t, v))
	}}
	srv := newHandlerServer(t, reg, hooks)

	// Enroll a class whose prototype is its own best probe.
	vec := make([]float32, d)
	for i := range vec {
		if i%3 == 0 {
			vec[i] = -1
		} else {
			vec[i] = 1
		}
	}
	resp, body := postJSON(t, srv.URL+"/v1/enroll", EnrollRequest{Label: "fresh", Vector: vec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enroll: status %d: %s", resp.StatusCode, body)
	}
	var er EnrollResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Label != "fresh" || er.Epoch != 1 {
		t.Fatalf("enroll response = %+v, want fresh@1", er)
	}

	resp, body = postJSON(t, srv.URL+"/v1/classify", ClassifyRequest{K: 1, Embedding: vec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify: status %d: %s", resp.StatusCode, body)
	}
	var cr ClassifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Epoch != 1 || len(cr.TopK) != 1 || cr.TopK[0].Label != "fresh" || cr.TopK[0].Class != classes {
		t.Fatalf("post-enroll classify = %+v, want fresh@class %d, epoch 1", cr, classes)
	}

	// The stats surface reports the enrollment state.
	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	ms := stats.Models["float"]
	if ms.Epoch != 1 || ms.EnrolledTotal != 1 || ms.Classes != classes+1 {
		t.Fatalf("stats = %+v, want epoch 1, enrolled_total 1, classes %d", ms, classes+1)
	}

	// Validation: label required; exactly one of vector/examples.
	for _, bad := range []EnrollRequest{
		{Vector: vec},
		{Label: "x"},
		{Label: "x", Vector: vec, Examples: [][]float32{vec}},
		{Label: "x", Vector: vec[:3]},
	} {
		if resp, body := postJSON(t, srv.URL+"/v1/enroll", bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad enroll %+v: status %d (%s), want 400", bad, resp.StatusCode, body)
		}
	}

	// A deployment without an enroll hook answers 501.
	bare := newHandlerServer(t, reg, Hooks{})
	if resp, _ := postJSON(t, bare.URL+"/v1/enroll", EnrollRequest{Label: "x", Vector: vec}); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("hook-less enroll: status %d, want 501", resp.StatusCode)
	}
}

func newHandlerServer(t *testing.T, reg *Registry, hooks Hooks) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(reg, hooks))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(v)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func mustEpochQuerier(t *testing.T, v *classmem.Versioned) Querier {
	t.Helper()
	b, err := v.Backend("float")
	if err != nil {
		t.Fatal(err)
	}
	return &enrollQuerier{
		Engine: infer.New(b, infer.WithEpoch(v.Epoch()), infer.WithWorkers(2)),
		store:  v,
	}
}
