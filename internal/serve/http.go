package serve

import (
	"context"
	"encoding/json"
	"errors"
	"mime"
	"net/http"
	"slices"
	"strconv"
	"sync"
	"time"

	"repro/internal/infer"
	"repro/internal/lat"
	"repro/internal/tensor"
)

// Request body size caps, enforced with http.MaxBytesReader before any
// JSON decoding. Classify carries one embedding (~tens of KB at the
// paper's d); embed-classify carries a raw input tensor and gets more
// headroom.
const (
	maxClassifyBody = 1 << 20 // 1 MiB
	maxEmbedBody    = 8 << 20 // 8 MiB
)

// ClassifyRequest is the POST /v1/classify body. Embedding is the dense
// probe; for the packed-binary backend it is sign-packed server-side, so
// one request shape serves every registered backend.
type ClassifyRequest struct {
	// Model names the registered backend ("float", "binary", "imc");
	// optional when exactly one model is registered.
	Model string `json:"model,omitempty"`
	// K is the number of ranked hits to return (default 1).
	K int `json:"k,omitempty"`
	// Embedding is the dense probe, length = backend dimensionality.
	Embedding []float32 `json:"embedding"`
}

// ClassifyHit is one ranked class in a ClassifyResponse.
type ClassifyHit struct {
	Class int     `json:"class"`
	Label string  `json:"label"`
	Score float64 `json:"score"`
}

// ClassifyResponse is the POST /v1/classify reply. Epoch tags the
// ranking with the class-memory version that produced it: a client
// (or the chaos oracle) replaying the probe against the base memory
// plus the first Epoch enrollments reproduces the ranking byte for
// byte. 0 is the frozen pre-enrollment memory.
type ClassifyResponse struct {
	Model string        `json:"model"`
	Epoch uint64        `json:"epoch,omitempty"`
	TopK  []ClassifyHit `json:"topk"`
}

// EnrollRequest is the POST /v1/enroll body: one new class, given
// either as a ready prototype vector (component signs are taken — the
// bipolar representation) or as example vectors bundled server-side by
// the majority rule. Enrollment is store-wide: every registered model
// over the shared class memory observes the new class at the returned
// epoch.
type EnrollRequest struct {
	// Label names the new class; required.
	Label string `json:"label"`
	// Vector is the class prototype (length = memory dimensionality).
	// Exactly one of Vector and Examples must be set.
	Vector []float32 `json:"vector,omitempty"`
	// Examples are bundled into the prototype by the majority rule.
	Examples [][]float32 `json:"examples,omitempty"`
	// Seed drives the bundling tie-break when Examples is set (an even
	// example count can tie componentwise); the same request bits must
	// yield the same prototype bits everywhere.
	Seed int64 `json:"seed,omitempty"`
}

// EnrollResponse is the POST /v1/enroll reply: the epoch at which the
// new class became queryable. Rankings tagged with an epoch ≥ this one
// include the class.
type EnrollResponse struct {
	Label string `json:"label"`
	Epoch uint64 `json:"epoch"`
}

// EmbedClassifyRequest is the POST /v1/embed-classify body: a raw
// per-sample input (flattened, row-major) that the named embedder turns
// into a probe before the usual coalesced readout — the end-to-end
// serving path.
type EmbedClassifyRequest struct {
	// Model names the backend to classify against; optional when exactly
	// one model is registered.
	Model string `json:"model,omitempty"`
	// Embedder names the registered embedder; optional when exactly one
	// is registered.
	Embedder string `json:"embedder,omitempty"`
	// K is the number of ranked hits to return (default 1).
	K int `json:"k,omitempty"`
	// Shape optionally asserts the per-sample input shape; it must match
	// the embedder's expected shape when present.
	Shape []int `json:"shape,omitempty"`
	// Input is one sample, flattened row-major to the embedder's input
	// shape (e.g. C·H·W values for an image embedder).
	Input []float32 `json:"input"`
}

// EmbedClassifyResponse is the POST /v1/embed-classify reply. Epoch is
// the class-memory version that served the ranking (see
// ClassifyResponse).
type EmbedClassifyResponse struct {
	Model    string        `json:"model"`
	Embedder string        `json:"embedder"`
	Epoch    uint64        `json:"epoch,omitempty"`
	TopK     []ClassifyHit `json:"topk"`
}

// healthResponse is the GET /healthz reply.
type healthResponse struct {
	Status    string   `json:"status"`
	Models    []string `json:"models"`
	Embedders []string `json:"embedders,omitempty"`
}

// modelStats is one model's entry in the GET /stats reply. Workers is
// the in-process engine's shard-worker count; Shards is the distributed
// router's shard-range count — whichever the model's querier reports.
// QuerierLat carries any named latency histograms the querier itself
// exports (the distributed router reports its shard round-trip times
// as "shard_rtt").
// Epoch, EnrolledTotal, and WALBytes surface live enrollment: the
// published class-memory epoch, classes enrolled beyond the frozen
// base, and the enrollment WAL's on-disk size (the operator's
// compaction gauge) — read through optional interface assertions on
// the querier, so frozen deployments simply omit them.
type modelStats struct {
	Backend       string                  `json:"backend"`
	Classes       int                     `json:"classes"`
	Dim           int                     `json:"dim"`
	Workers       int                     `json:"workers,omitempty"`
	Shards        int                     `json:"shards,omitempty"`
	Epoch         uint64                  `json:"epoch,omitempty"`
	EnrolledTotal uint64                  `json:"enrolled_total,omitempty"`
	WALBytes      int64                   `json:"wal_bytes,omitempty"`
	MaxBatch      int                     `json:"max_batch"`
	MaxDelay      string                  `json:"max_delay"`
	Watermark     int                     `json:"watermark,omitempty"`
	QuerierLat    map[string]lat.Snapshot `json:"querier_lat,omitempty"`
	Stats
}

// embedderStats is one embedder's entry in the GET /stats reply: its
// geometry and the server-side embed-stage latency histogram.
type embedderStats struct {
	InShape []int         `json:"in_shape"`
	OutDim  int           `json:"out_dim"`
	Embed   *lat.Snapshot `json:"embed,omitempty"`
}

// statsResponse is the GET /stats reply: per-model coalescer counters
// and stage histograms (queue wait, readout) beside per-embedder embed
// timings — the internal decomposition of the external latency
// cmd/hdcload measures.
type statsResponse struct {
	Models    map[string]modelStats    `json:"models"`
	Embedders map[string]embedderStats `json:"embedders,omitempty"`
}

// Hooks lets the process embedding the handler surface its lifecycle:
// readiness (load balancers poll /readyz and stop routing on 503) and
// hot reload (POST /v1/reload swaps model state without a restart).
// The zero value serves a process that is always ready and cannot
// reload.
type Hooks struct {
	// Ready reports whether the process should receive traffic. nil
	// means always ready. /readyz returns 503 while it reports false —
	// during startup (models still compiling) and during the shutdown
	// drain window.
	Ready func() bool
	// Reload atomically swaps the served model state (new CompiledNet,
	// new class memory) and returns when the swap is published. nil
	// disables POST /v1/reload (501).
	Reload func() error
	// Enroll adds one class to the live class memory and returns the
	// epoch at which it became queryable (durable before visible when
	// the deployment has a WAL). The serve layer has validated shape
	// basics; the hook owns dimensionality and bundling. nil disables
	// POST /v1/enroll (501).
	Enroll func(ctx context.Context, req EnrollRequest) (uint64, error)
}

// embedTimers aggregates per-embedder embed-stage latency. Keyed by
// embedder name so histogram continuity survives a hot reload that
// replaces the embedder instance behind the name.
type embedTimers struct {
	mu sync.Mutex
	m  map[string]*lat.Hist
}

func (et *embedTimers) get(name string) *lat.Hist {
	et.mu.Lock()
	defer et.mu.Unlock()
	h, ok := et.m[name]
	if !ok {
		h = &lat.Hist{}
		et.m[name] = h
	}
	return h
}

func (et *embedTimers) snapshot(name string) *lat.Snapshot {
	et.mu.Lock()
	h, ok := et.m[name]
	et.mu.Unlock()
	if !ok {
		return nil
	}
	s := h.Snapshot()
	return &s
}

// NewHandler builds the HTTP JSON API over a registry:
//
//	POST /v1/classify        — classify one embedding against a named model
//	POST /v1/embed-classify  — embed one raw input, then classify it
//	POST /v1/enroll          — add one class live (wired via Hooks.Enroll)
//	POST /v1/reload          — hot-swap model state (wired via Hooks.Reload)
//	GET  /healthz            — liveness plus registered model/embedder names
//	GET  /readyz             — readiness: 503 during startup and drain
//	GET  /stats              — per-model coalescer counters + stage histograms
//
// Every handler is registered with a method-specific pattern, so a
// wrong-method request gets a uniform 405 from the mux. POST bodies are
// size-capped and must be JSON (an explicit non-JSON Content-Type is
// rejected with 415). Overloaded coalescers surface as 429 with a
// Retry-After hint. At most one Hooks value wires the embedding
// process's readiness and reload callbacks in.
func NewHandler(reg *Registry, hookList ...Hooks) http.Handler {
	var hooks Hooks
	if len(hookList) > 0 {
		hooks = hookList[0]
	}
	embedTimes := &embedTimers{m: make(map[string]*lat.Hist)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		var req ClassifyRequest
		if !decodeJSON(w, r, maxClassifyBody, &req) {
			return
		}
		co, err := reg.Get(req.Model)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		res, epoch, err := co.ClassifyEpoch(r.Context(), Probe{Dense: req.Embedding}, req.K)
		if err != nil {
			classifyError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ClassifyResponse{
			Model: co.Querier().Name(),
			Epoch: epoch,
			TopK:  toHits(res.TopK),
		})
	})
	mux.HandleFunc("POST /v1/enroll", func(w http.ResponseWriter, r *http.Request) {
		if hooks.Enroll == nil {
			httpError(w, http.StatusNotImplemented, "this deployment has no enroll hook")
			return
		}
		var req EnrollRequest
		if !decodeJSON(w, r, maxEmbedBody, &req) {
			return
		}
		if req.Label == "" {
			httpError(w, http.StatusBadRequest, ErrBadInput.Error()+": enroll label must be non-empty")
			return
		}
		if (len(req.Vector) == 0) == (len(req.Examples) == 0) {
			httpError(w, http.StatusBadRequest,
				ErrBadInput.Error()+": exactly one of vector and examples must be set")
			return
		}
		epoch, err := hooks.Enroll(r.Context(), req)
		if err != nil {
			enrollError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, EnrollResponse{Label: req.Label, Epoch: epoch})
	})
	mux.HandleFunc("POST /v1/embed-classify", func(w http.ResponseWriter, r *http.Request) {
		var req EmbedClassifyRequest
		if !decodeJSON(w, r, maxEmbedBody, &req) {
			return
		}
		emb, err := reg.Embedder(req.Embedder)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		co, err := reg.Get(req.Model)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		shape := emb.InShape()
		if req.Shape != nil && !slices.Equal(req.Shape, shape) {
			httpError(w, http.StatusBadRequest,
				ErrBadInput.Error()+": request shape does not match the embedder's input shape")
			return
		}
		want := 1
		for _, s := range shape {
			want *= s
		}
		if len(req.Input) != want {
			httpError(w, http.StatusBadRequest,
				ErrBadInput.Error()+": input element count does not match the embedder's input shape")
			return
		}
		// Deadline propagation: the embed stage is the expensive half of
		// this endpoint — do not spend it on a caller that already hung up.
		if r.Context().Err() != nil {
			httpError(w, statusClientClosedRequest, "client went away before embedding")
			return
		}
		x := tensor.FromSlice(req.Input, append([]int{1}, shape...)...)
		embedStart := time.Now()
		probe, err := emb.Embed(x)
		embedTimes.get(emb.Name()).Observe(time.Since(embedStart))
		if err != nil {
			// Input geometry was validated above, so a failure here is a
			// server-side embedder problem unless it says otherwise.
			code := http.StatusInternalServerError
			if errors.Is(err, ErrBadInput) {
				code = http.StatusBadRequest
			}
			httpError(w, code, err.Error())
			return
		}
		res, epoch, err := co.ClassifyEpoch(r.Context(), Probe{Dense: probe.Row(0)}, req.K)
		if err != nil {
			classifyError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, EmbedClassifyResponse{
			Model:    co.Querier().Name(),
			Embedder: emb.Name(),
			Epoch:    epoch,
			TopK:     toHits(res.TopK),
		})
	})
	mux.HandleFunc("POST /v1/reload", func(w http.ResponseWriter, r *http.Request) {
		if hooks.Reload == nil {
			httpError(w, http.StatusNotImplemented, "this deployment has no reload hook")
			return
		}
		if err := hooks.Reload(); err != nil {
			httpError(w, http.StatusInternalServerError, "reload failed: "+err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "reloaded"})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: the process is up and the mux answers. Routing
		// decisions belong to /readyz.
		writeJSON(w, http.StatusOK, healthResponse{
			Status: "ok", Models: reg.Names(), Embedders: reg.EmbedderNames(),
		})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if hooks.Ready != nil && !hooks.Ready() {
			httpError(w, http.StatusServiceUnavailable, "not ready")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		out := statsResponse{
			Models:    make(map[string]modelStats),
			Embedders: make(map[string]embedderStats),
		}
		for _, name := range reg.Names() {
			co, err := reg.Get(name)
			if err != nil {
				continue // raced with Close
			}
			q := co.Querier()
			ms := modelStats{
				Backend:   q.Name(),
				Classes:   q.Classes(),
				Dim:       q.Dim(),
				MaxBatch:  co.Config().MaxBatch,
				MaxDelay:  co.Config().MaxDelay.String(),
				Watermark: co.Config().Watermark,
				Stats:     co.Stats(),
			}
			if w, ok := q.(interface{ Workers() int }); ok {
				ms.Workers = w.Workers()
			}
			if s, ok := q.(interface{ Shards() int }); ok {
				ms.Shards = s.Shards()
			}
			if ls, ok := q.(interface {
				LatencySnapshots() map[string]lat.Snapshot
			}); ok {
				ms.QuerierLat = ls.LatencySnapshots()
			}
			if e, ok := q.(interface{ Epoch() uint64 }); ok {
				ms.Epoch = e.Epoch()
			}
			if e, ok := q.(interface{ EnrolledTotal() uint64 }); ok {
				ms.EnrolledTotal = e.EnrolledTotal()
			}
			if wb, ok := q.(interface{ WALBytes() int64 }); ok {
				ms.WALBytes = wb.WALBytes()
			}
			out.Models[name] = ms
		}
		for _, name := range reg.EmbedderNames() {
			emb, err := reg.Embedder(name)
			if err != nil {
				continue
			}
			out.Embedders[name] = embedderStats{
				InShape: emb.InShape(),
				OutDim:  emb.OutDim(),
				Embed:   embedTimes.snapshot(name),
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
	return mux
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the server produced a response. Nothing reads the
// reply (the client is gone) — the code exists for the access log.
const statusClientClosedRequest = 499

// decodeJSON enforces the shared POST-body policy — JSON content type,
// size cap, well-formed body — writing the error response itself and
// returning false when the request should not proceed.
func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			httpError(w, http.StatusUnsupportedMediaType,
				"unsupported content type "+ct+": want application/json")
			return false
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
			return false
		}
		httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return false
	}
	return true
}

// retryAfterSeconds is the Retry-After hint sent with 429 responses: a
// coalescer sheds because its queue already holds more than a watermark
// of work, which drains within a few MaxDelay windows — one second is a
// safely conservative client backoff at any sane configuration.
const retryAfterSeconds = 1

// classifyError maps Coalescer.Classify errors onto status codes,
// shared by both classification endpoints. ErrOverloaded is the load
// -shedding contract: 429 plus Retry-After so a well-behaved client
// backs off instead of hammering a saturated queue.
func classifyError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBadProbe):
		httpError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		httpError(w, statusClientClosedRequest, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// enrollError maps Hooks.Enroll errors onto status codes. Geometry and
// label problems are the caller's fault (400); an unavailable store —
// the distributed router could not reach any replica of the owning
// range, or a flip is already in flight elsewhere — is 503 so the
// client retries against a healed cluster.
func enrollError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBadInput), errors.Is(err, ErrBadProbe):
		httpError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		httpError(w, statusClientClosedRequest, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// toHits converts engine hits to the JSON response shape.
func toHits(top []infer.Hit) []ClassifyHit {
	out := make([]ClassifyHit, 0, len(top))
	for _, h := range top {
		out = append(out, ClassifyHit{Class: h.Class, Label: h.Label, Score: h.Score})
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
