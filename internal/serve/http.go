package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// ClassifyRequest is the POST /v1/classify body. Embedding is the dense
// probe; for the packed-binary backend it is sign-packed server-side, so
// one request shape serves every registered backend.
type ClassifyRequest struct {
	// Model names the registered backend ("float", "binary", "imc");
	// optional when exactly one model is registered.
	Model string `json:"model,omitempty"`
	// K is the number of ranked hits to return (default 1).
	K int `json:"k,omitempty"`
	// Embedding is the dense probe, length = backend dimensionality.
	Embedding []float32 `json:"embedding"`
}

// ClassifyHit is one ranked class in a ClassifyResponse.
type ClassifyHit struct {
	Class int     `json:"class"`
	Label string  `json:"label"`
	Score float64 `json:"score"`
}

// ClassifyResponse is the POST /v1/classify reply.
type ClassifyResponse struct {
	Model string        `json:"model"`
	TopK  []ClassifyHit `json:"topk"`
}

// healthResponse is the GET /healthz reply.
type healthResponse struct {
	Status string   `json:"status"`
	Models []string `json:"models"`
}

// modelStats is one model's entry in the GET /stats reply.
type modelStats struct {
	Backend  string `json:"backend"`
	Classes  int    `json:"classes"`
	Dim      int    `json:"dim"`
	Workers  int    `json:"workers"`
	MaxBatch int    `json:"max_batch"`
	MaxDelay string `json:"max_delay"`
	Stats
}

// NewHandler builds the HTTP JSON API over a registry:
//
//	POST /v1/classify  — classify one embedding against a named model
//	GET  /healthz      — liveness plus the registered model names
//	GET  /stats        — per-model coalescer counters
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		var req ClassifyRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
			return
		}
		co, err := reg.Get(req.Model)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		res, err := co.Classify(r.Context(), Probe{Dense: req.Embedding}, req.K)
		if err != nil {
			switch {
			case errors.Is(err, ErrBadProbe):
				httpError(w, http.StatusBadRequest, err.Error())
			case errors.Is(err, ErrClosed):
				httpError(w, http.StatusServiceUnavailable, err.Error())
			default:
				httpError(w, http.StatusInternalServerError, err.Error())
			}
			return
		}
		resp := ClassifyResponse{Model: co.Engine().Backend().Name()}
		for _, h := range res.TopK {
			resp.TopK = append(resp.TopK, ClassifyHit{Class: h.Class, Label: h.Label, Score: h.Score})
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Models: reg.Names()})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]modelStats)
		for _, name := range reg.Names() {
			co, err := reg.Get(name)
			if err != nil {
				continue // raced with Close
			}
			eng := co.Engine()
			out[name] = modelStats{
				Backend:  eng.Backend().Name(),
				Classes:  eng.Backend().Classes(),
				Dim:      eng.Backend().Dim(),
				Workers:  eng.Workers(),
				MaxBatch: co.Config().MaxBatch,
				MaxDelay: co.Config().MaxDelay.String(),
				Stats:    co.Stats(),
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
