package serve

import (
	"encoding/json"
	"errors"
	"mime"
	"net/http"
	"slices"

	"repro/internal/infer"
	"repro/internal/tensor"
)

// Request body size caps, enforced with http.MaxBytesReader before any
// JSON decoding. Classify carries one embedding (~tens of KB at the
// paper's d); embed-classify carries a raw input tensor and gets more
// headroom.
const (
	maxClassifyBody = 1 << 20 // 1 MiB
	maxEmbedBody    = 8 << 20 // 8 MiB
)

// ClassifyRequest is the POST /v1/classify body. Embedding is the dense
// probe; for the packed-binary backend it is sign-packed server-side, so
// one request shape serves every registered backend.
type ClassifyRequest struct {
	// Model names the registered backend ("float", "binary", "imc");
	// optional when exactly one model is registered.
	Model string `json:"model,omitempty"`
	// K is the number of ranked hits to return (default 1).
	K int `json:"k,omitempty"`
	// Embedding is the dense probe, length = backend dimensionality.
	Embedding []float32 `json:"embedding"`
}

// ClassifyHit is one ranked class in a ClassifyResponse.
type ClassifyHit struct {
	Class int     `json:"class"`
	Label string  `json:"label"`
	Score float64 `json:"score"`
}

// ClassifyResponse is the POST /v1/classify reply.
type ClassifyResponse struct {
	Model string        `json:"model"`
	TopK  []ClassifyHit `json:"topk"`
}

// EmbedClassifyRequest is the POST /v1/embed-classify body: a raw
// per-sample input (flattened, row-major) that the named embedder turns
// into a probe before the usual coalesced readout — the end-to-end
// serving path.
type EmbedClassifyRequest struct {
	// Model names the backend to classify against; optional when exactly
	// one model is registered.
	Model string `json:"model,omitempty"`
	// Embedder names the registered embedder; optional when exactly one
	// is registered.
	Embedder string `json:"embedder,omitempty"`
	// K is the number of ranked hits to return (default 1).
	K int `json:"k,omitempty"`
	// Shape optionally asserts the per-sample input shape; it must match
	// the embedder's expected shape when present.
	Shape []int `json:"shape,omitempty"`
	// Input is one sample, flattened row-major to the embedder's input
	// shape (e.g. C·H·W values for an image embedder).
	Input []float32 `json:"input"`
}

// EmbedClassifyResponse is the POST /v1/embed-classify reply.
type EmbedClassifyResponse struct {
	Model    string        `json:"model"`
	Embedder string        `json:"embedder"`
	TopK     []ClassifyHit `json:"topk"`
}

// healthResponse is the GET /healthz reply.
type healthResponse struct {
	Status    string   `json:"status"`
	Models    []string `json:"models"`
	Embedders []string `json:"embedders,omitempty"`
}

// modelStats is one model's entry in the GET /stats reply. Workers is
// the in-process engine's shard-worker count; Shards is the distributed
// router's shard-range count — whichever the model's querier reports.
type modelStats struct {
	Backend  string `json:"backend"`
	Classes  int    `json:"classes"`
	Dim      int    `json:"dim"`
	Workers  int    `json:"workers,omitempty"`
	Shards   int    `json:"shards,omitempty"`
	MaxBatch int    `json:"max_batch"`
	MaxDelay string `json:"max_delay"`
	Stats
}

// NewHandler builds the HTTP JSON API over a registry:
//
//	POST /v1/classify        — classify one embedding against a named model
//	POST /v1/embed-classify  — embed one raw input, then classify it
//	GET  /healthz            — liveness plus registered model/embedder names
//	GET  /stats              — per-model coalescer counters
//
// Every handler is registered with a method-specific pattern, so a
// wrong-method request gets a uniform 405 from the mux. POST bodies are
// size-capped and must be JSON (an explicit non-JSON Content-Type is
// rejected with 415).
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		var req ClassifyRequest
		if !decodeJSON(w, r, maxClassifyBody, &req) {
			return
		}
		co, err := reg.Get(req.Model)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		res, err := co.Classify(r.Context(), Probe{Dense: req.Embedding}, req.K)
		if err != nil {
			classifyError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ClassifyResponse{
			Model: co.Querier().Name(),
			TopK:  toHits(res.TopK),
		})
	})
	mux.HandleFunc("POST /v1/embed-classify", func(w http.ResponseWriter, r *http.Request) {
		var req EmbedClassifyRequest
		if !decodeJSON(w, r, maxEmbedBody, &req) {
			return
		}
		emb, err := reg.Embedder(req.Embedder)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		co, err := reg.Get(req.Model)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		shape := emb.InShape()
		if req.Shape != nil && !slices.Equal(req.Shape, shape) {
			httpError(w, http.StatusBadRequest,
				ErrBadInput.Error()+": request shape does not match the embedder's input shape")
			return
		}
		want := 1
		for _, s := range shape {
			want *= s
		}
		if len(req.Input) != want {
			httpError(w, http.StatusBadRequest,
				ErrBadInput.Error()+": input element count does not match the embedder's input shape")
			return
		}
		x := tensor.FromSlice(req.Input, append([]int{1}, shape...)...)
		probe, err := emb.Embed(x)
		if err != nil {
			// Input geometry was validated above, so a failure here is a
			// server-side embedder problem unless it says otherwise.
			code := http.StatusInternalServerError
			if errors.Is(err, ErrBadInput) {
				code = http.StatusBadRequest
			}
			httpError(w, code, err.Error())
			return
		}
		res, err := co.Classify(r.Context(), Probe{Dense: probe.Row(0)}, req.K)
		if err != nil {
			classifyError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, EmbedClassifyResponse{
			Model:    co.Querier().Name(),
			Embedder: emb.Name(),
			TopK:     toHits(res.TopK),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthResponse{
			Status: "ok", Models: reg.Names(), Embedders: reg.EmbedderNames(),
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]modelStats)
		for _, name := range reg.Names() {
			co, err := reg.Get(name)
			if err != nil {
				continue // raced with Close
			}
			q := co.Querier()
			ms := modelStats{
				Backend:  q.Name(),
				Classes:  q.Classes(),
				Dim:      q.Dim(),
				MaxBatch: co.Config().MaxBatch,
				MaxDelay: co.Config().MaxDelay.String(),
				Stats:    co.Stats(),
			}
			if w, ok := q.(interface{ Workers() int }); ok {
				ms.Workers = w.Workers()
			}
			if s, ok := q.(interface{ Shards() int }); ok {
				ms.Shards = s.Shards()
			}
			out[name] = ms
		}
		writeJSON(w, http.StatusOK, out)
	})
	return mux
}

// decodeJSON enforces the shared POST-body policy — JSON content type,
// size cap, well-formed body — writing the error response itself and
// returning false when the request should not proceed.
func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			httpError(w, http.StatusUnsupportedMediaType,
				"unsupported content type "+ct+": want application/json")
			return false
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
			return false
		}
		httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return false
	}
	return true
}

// classifyError maps Coalescer.Classify errors onto status codes,
// shared by both classification endpoints.
func classifyError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBadProbe):
		httpError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// toHits converts engine hits to the JSON response shape.
func toHits(top []infer.Hit) []ClassifyHit {
	out := make([]ClassifyHit, 0, len(top))
	for _, h := range top {
		out = append(out, ClassifyHit{Class: h.Class, Label: h.Label, Score: h.Score})
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
