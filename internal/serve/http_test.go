package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/infer"
)

func newTestServer(t *testing.T, f *fixture) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	cfg := Config{MaxBatch: 8, MaxDelay: time.Millisecond}
	if err := reg.Register("float", NewCoalescer(
		infer.New(infer.NewFloatBackend(f.phi, f.labels, 1), infer.WithWorkers(2)), cfg)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("binary", NewCoalescer(
		infer.New(infer.NewBinaryBackend(f.im), infer.WithWorkers(2)), cfg)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(reg))
	t.Cleanup(func() { srv.Close(); reg.Close() })
	return srv, reg
}

func postClassify(t *testing.T, url string, req ClassifyRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPClassifyParityAndConcurrency(t *testing.T) {
	const classes, d, probes = 13, 128, 24
	f := newFixture(classes, d, probes, 10)
	srv, _ := newTestServer(t, f)

	// Reference: the direct engine path.
	want := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1)).Query(infer.DenseBatch(f.dense), 3)

	var wg sync.WaitGroup
	errs := make(chan error, probes)
	for p := 0; p < probes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			resp, body := postClassify(t, srv.URL, ClassifyRequest{
				Model: "float", K: 3, Embedding: f.dense.Row(p),
			})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("probe %d: status %d: %s", p, resp.StatusCode, body)
				return
			}
			var cr ClassifyResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				errs <- fmt.Errorf("probe %d: %v", p, err)
				return
			}
			if cr.Model != "float" || len(cr.TopK) != 3 {
				errs <- fmt.Errorf("probe %d: response %+v", p, cr)
				return
			}
			for i, h := range cr.TopK {
				w := want[p].TopK[i]
				if h.Class != w.Class || h.Label != w.Label {
					errs <- fmt.Errorf("probe %d rank %d: (%d, %q), want (%d, %q)",
						p, i, h.Class, h.Label, w.Class, w.Label)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHTTPClassifyErrors(t *testing.T) {
	const classes, d = 7, 64
	f := newFixture(classes, d, 1, 11)
	srv, _ := newTestServer(t, f)

	resp, _ := postClassify(t, srv.URL, ClassifyRequest{Model: "nope", Embedding: f.dense.Row(0)})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404", resp.StatusCode)
	}
	// Two models registered: the empty model name is ambiguous.
	resp, _ = postClassify(t, srv.URL, ClassifyRequest{Embedding: f.dense.Row(0)})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ambiguous model: status %d, want 404", resp.StatusCode)
	}
	resp, body := postClassify(t, srv.URL, ClassifyRequest{Model: "float", Embedding: []float32{1, 2}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad dim: status %d, want 400 (%s)", resp.StatusCode, body)
	}
	r, err := http.Post(srv.URL+"/v1/classify", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", r.StatusCode)
	}
}

func TestHTTPHealthAndStats(t *testing.T) {
	const classes, d = 7, 64
	f := newFixture(classes, d, 2, 12)
	srv, _ := newTestServer(t, f)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || len(h.Models) != 2 || h.Models[0] != "binary" || h.Models[1] != "float" {
		t.Fatalf("healthz = %+v", h)
	}

	// Serve one probe through each model, then check the stats surface.
	for _, model := range []string{"float", "binary"} {
		if r, body := postClassify(t, srv.URL, ClassifyRequest{Model: model, Embedding: f.dense.Row(0)}); r.StatusCode != http.StatusOK {
			t.Fatalf("%s classify: %d %s", model, r.StatusCode, body)
		}
	}
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, model := range []string{"float", "binary"} {
		s, ok := stats.Models[model]
		if !ok {
			t.Fatalf("stats missing model %q: %v", model, stats)
		}
		if s.Classes != classes || s.Dim != d || s.Requests != 1 || s.Batches != 1 {
			t.Fatalf("%s stats = %+v", model, s)
		}
		// The stage decomposition must be present and see the request.
		if s.QueueWait == nil || s.Readout == nil {
			t.Fatalf("%s stats missing stage histograms: %+v", model, s)
		}
		if s.QueueWait.Count != 1 || s.Readout.Count != 1 {
			t.Fatalf("%s stage counts queue=%d readout=%d, want 1/1",
				model, s.QueueWait.Count, s.Readout.Count)
		}
	}
}
