package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/infer"
)

// slowQuerier wraps a real engine with an injectable per-batch delay
// and counters — the serve-side fault-injection harness: it turns a
// microsecond-fast local engine into an arbitrarily slow backend so
// overload, shedding, and cancellation semantics can be exercised
// deterministically.
type slowQuerier struct {
	inner   Querier
	delay   atomic.Int64 // ns injected before every TryQuery
	batches atomic.Int64
	probes  atomic.Int64
}

func newSlowQuerier(inner Querier, delay time.Duration) *slowQuerier {
	s := &slowQuerier{inner: inner}
	s.delay.Store(int64(delay))
	return s
}

func (s *slowQuerier) TryQuery(batch *infer.Batch, k int) ([]infer.Result, error) {
	if d := time.Duration(s.delay.Load()); d > 0 {
		time.Sleep(d)
	}
	s.batches.Add(1)
	s.probes.Add(int64(batch.Len()))
	return s.inner.TryQuery(batch, k)
}

func (s *slowQuerier) Name() string                   { return s.inner.Name() }
func (s *slowQuerier) Classes() int                   { return s.inner.Classes() }
func (s *slowQuerier) Dim() int                       { return s.inner.Dim() }
func (s *slowQuerier) Requires() infer.Representation { return s.inner.Requires() }

// Overload semantics under a deliberately slow backend: the queue fills
// to the watermark, new requests fail fast with ErrOverloaded, the shed
// counter moves, the observed queue depth stays bounded, and every
// accepted request still returns the exact engine ranking. Run under
// -race in CI.
func TestCoalescerOverloadSheds(t *testing.T) {
	const classes, d, probes = 11, 64, 120
	const watermark = 16
	f := newFixture(classes, d, probes, 21)
	eng := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1))
	want := eng.Query(infer.DenseBatch(f.dense), 3)
	slow := newSlowQuerier(eng, 20*time.Millisecond)
	co := NewCoalescer(slow, Config{
		MaxBatch: 4, MaxDelay: time.Millisecond, Watermark: watermark, MaxInFlight: 1,
	})
	defer co.Close()

	var wg sync.WaitGroup
	var okCount, shedCount atomic.Int64
	errCh := make(chan error, probes)
	for p := 0; p < probes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			res, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(p)}, 3)
			switch {
			case err == nil:
				okCount.Add(1)
				for i := range res.TopK {
					if res.TopK[i] != want[p].TopK[i] {
						errCh <- errors.New("accepted request returned a wrong ranking under overload")
						return
					}
				}
			case errors.Is(err, ErrOverloaded):
				shedCount.Add(1)
			default:
				errCh <- err
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	s := co.Stats()
	if shedCount.Load() == 0 || s.Shed == 0 {
		t.Fatalf("no shedding under overload: ok=%d shed=%d stats=%+v",
			okCount.Load(), shedCount.Load(), s)
	}
	if uint64(shedCount.Load()) != s.Shed {
		t.Fatalf("shed counter %d disagrees with callers' view %d", s.Shed, shedCount.Load())
	}
	if okCount.Load() == 0 {
		t.Fatal("everything shed: the watermark should admit some requests")
	}
	// Every admitted probe was either served or shed — none lost.
	if got := uint64(okCount.Load()); s.Requests != got {
		t.Fatalf("admitted %d requests, %d callers got results", s.Requests, got)
	}
	// The backend only ever saw accepted probes.
	if slow.probes.Load() != okCount.Load() {
		t.Fatalf("backend saw %d probes, %d were accepted", slow.probes.Load(), okCount.Load())
	}
}

// The watermark bounds the queue depth the drain loop ever observes:
// sample Stats under sustained overload and the depth must never exceed
// the watermark plus the transient overshoot of concurrent admissions.
func TestCoalescerQueueDepthBounded(t *testing.T) {
	const classes, d = 7, 64
	const watermark = 8
	f := newFixture(classes, d, 4, 22)
	eng := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1))
	slow := newSlowQuerier(eng, 10*time.Millisecond)
	co := NewCoalescer(slow, Config{MaxBatch: 2, MaxDelay: time.Millisecond, Watermark: watermark, MaxInFlight: 2})
	defer co.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = co.Classify(context.Background(), Probe{Dense: f.dense.Row(0)}, 1)
			}
		}()
	}
	var maxDepth int64
	for i := 0; i < 50; i++ {
		if depth := co.Stats().QueueDepth; depth > maxDepth {
			maxDepth = depth
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	// 32 concurrent callers can transiently overshoot by at most 32.
	if maxDepth > watermark+32 {
		t.Fatalf("queue depth reached %d with watermark %d", maxDepth, watermark)
	}
	if s := co.Stats(); s.Shed == 0 {
		t.Fatalf("sustained overload never shed: %+v", s)
	}
}

// A request whose context is cancelled while it waits in the queue is
// dropped at drain time: the backend never sees it and the Cancelled
// counter moves.
func TestCoalescerDropsCancelledAtDrain(t *testing.T) {
	const classes, d = 7, 64
	f := newFixture(classes, d, 2, 23)
	eng := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1))
	slow := newSlowQuerier(eng, 0)
	// Long MaxDelay: the request sits in the pending batch long enough
	// for the cancellation to land before the flush.
	co := NewCoalescer(slow, Config{MaxBatch: 1024, MaxDelay: 80 * time.Millisecond})
	defer co.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := co.Classify(ctx, Probe{Dense: f.dense.Row(0)}, 1)
		done <- err
	}()
	time.Sleep(15 * time.Millisecond) // let it enqueue
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Classify err = %v", err)
	}
	// Wait past the flush deadline: the drain must skip the dead request.
	deadline := time.Now().Add(2 * time.Second)
	for co.Stats().Cancelled == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s := co.Stats()
	if s.Cancelled != 1 {
		t.Fatalf("cancelled counter = %d, want 1 (%+v)", s.Cancelled, s)
	}
	if slow.probes.Load() != 0 {
		t.Fatalf("backend saw %d probes for a cancelled request", slow.probes.Load())
	}
	// A live caller on the same coalescer still gets served.
	if _, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(1)}, 1); err != nil {
		t.Fatal(err)
	}
}

// SwapQuerier hot-swaps the backend mid-traffic: requests keep being
// answered throughout, with zero failures, and geometry mismatches are
// rejected with ErrIncompatibleSwap.
func TestCoalescerSwapQuerier(t *testing.T) {
	const classes, d, probes = 13, 128, 40
	f := newFixture(classes, d, probes, 24)
	engA := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1))
	engB := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1), infer.WithWorkers(2))
	want := engA.Query(infer.DenseBatch(f.dense), 2)
	co := NewCoalescer(engA, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer co.Close()

	stop := make(chan struct{})
	errCh := make(chan error, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := (w*17 + i) % probes
				res, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(p)}, 2)
				if err != nil {
					errCh <- err
					return
				}
				for j := range res.TopK {
					if res.TopK[j] != want[p].TopK[j] {
						errCh <- errors.New("ranking changed across swap")
						return
					}
				}
			}
		}(w)
	}
	// Swap back and forth under traffic. Identical memories → identical
	// rankings, so any disruption shows up as an error above.
	for i := 0; i < 20; i++ {
		var err error
		if i%2 == 0 {
			err = co.SwapQuerier(engB)
		} else {
			err = co.SwapQuerier(engA)
		}
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Geometry mismatches are rejected and leave the old querier serving.
	f2 := newFixture(classes, d/2, 1, 25)
	bad := infer.New(infer.NewFloatBackend(f2.phi, f2.labels, 1))
	if err := co.SwapQuerier(bad); !errors.Is(err, ErrIncompatibleSwap) {
		t.Fatalf("wrong-dim swap err = %v, want ErrIncompatibleSwap", err)
	}
	if _, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(0)}, 1); err != nil {
		t.Fatalf("coalescer broken after rejected swap: %v", err)
	}
}

// The adaptive delay must tighten under load and report through Stats:
// drive a burst of traffic and the armed delay should fall below
// MaxDelay; after idling it returns to MaxDelay on the next lone probe.
func TestCoalescerAdaptiveDelay(t *testing.T) {
	const classes, d, probes = 7, 64, 64
	f := newFixture(classes, d, probes, 26)
	eng := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1))
	co := NewCoalescer(eng, Config{
		MaxBatch: 16, MaxDelay: 50 * time.Millisecond, MinDelay: 100 * time.Microsecond,
	})
	defer co.Close()

	// Paced arrivals with gaps ≪ MaxDelay: the EWMA converges to the
	// small gap, so timers armed mid-stream (partial batches between
	// greedy drains) must be far below MaxDelay. Retry a few rounds —
	// exact flush timing is scheduler-dependent.
	var cur time.Duration
	for round := 0; round < 10; round++ {
		var wg sync.WaitGroup
		for p := 0; p < probes; p++ {
			wg.Add(1)
			time.Sleep(20 * time.Microsecond) // stagger admissions
			go func(p int) {
				defer wg.Done()
				if _, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(p)}, 1); err != nil {
					panic(err)
				}
			}(p)
		}
		wg.Wait()
		var err error
		if cur, err = time.ParseDuration(co.Stats().CurDelay); err != nil {
			t.Fatalf("unparseable CurDelay: %v", err)
		}
		if cur < 50*time.Millisecond {
			break
		}
	}
	if cur >= 50*time.Millisecond {
		t.Fatalf("adaptive delay %v did not tighten under burst load", cur)
	}
	// MaxDelay stays the hard bound: a lone probe is never delayed past it.
	start := time.Now()
	if _, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(0)}, 1); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("lone probe waited %v", waited)
	}
}
