package serve

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the named model table: one process serves several
// backends — float reference, packed-binary edge path, analog crossbar —
// side by side, each behind its own coalescer over its own shared
// engine.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Coalescer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*Coalescer)}
}

// Register adds a coalescer under name; registering a taken name returns
// ErrDuplicateModel.
func (r *Registry) Register(name string, c *Coalescer) error {
	if name == "" {
		return fmt.Errorf("serve: cannot register an empty model name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateModel, name)
	}
	r.models[name] = c
	return nil
}

// Get resolves a model by name. An empty name resolves iff exactly one
// model is registered (the single-model deployment shorthand).
func (r *Registry) Get(name string) (*Coalescer, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.models) == 1 {
			for _, c := range r.models {
				return c, nil
			}
		}
		return nil, fmt.Errorf("%w: no model named and %d registered", ErrUnknownModel, len(r.models))
	}
	c, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return c, nil
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close closes every registered coalescer and empties the registry.
func (r *Registry) Close() {
	r.mu.Lock()
	models := r.models
	r.models = make(map[string]*Coalescer)
	r.mu.Unlock()
	for _, c := range models {
		c.Close()
	}
}
