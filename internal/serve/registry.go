package serve

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the named model table: one process serves several
// backends — float reference, packed-binary edge path, analog crossbar —
// side by side, each behind its own coalescer over its own shared
// engine. It also holds the named embedders of the end-to-end path
// (/v1/embed-classify): stateless frozen networks any backend's probes
// can be produced from.
type Registry struct {
	mu        sync.RWMutex
	models    map[string]*Coalescer
	embedders map[string]Embedder
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		models:    make(map[string]*Coalescer),
		embedders: make(map[string]Embedder),
	}
}

// Register adds a coalescer under name; registering a taken name returns
// ErrDuplicateModel.
func (r *Registry) Register(name string, c *Coalescer) error {
	if name == "" {
		return fmt.Errorf("serve: cannot register an empty model name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateModel, name)
	}
	r.models[name] = c
	return nil
}

// Get resolves a model by name. An empty name resolves iff exactly one
// model is registered (the single-model deployment shorthand).
func (r *Registry) Get(name string) (*Coalescer, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.models) == 1 {
			for _, c := range r.models {
				return c, nil
			}
		}
		return nil, fmt.Errorf("%w: no model named and %d registered", ErrUnknownModel, len(r.models))
	}
	c, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return c, nil
}

// RegisterEmbedder adds an embedder under name; registering a taken
// name returns ErrDuplicateEmbedder.
func (r *Registry) RegisterEmbedder(name string, e Embedder) error {
	if name == "" {
		return fmt.Errorf("serve: cannot register an empty embedder name")
	}
	if e == nil {
		return fmt.Errorf("serve: cannot register a nil embedder under %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.embedders[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateEmbedder, name)
	}
	r.embedders[name] = e
	return nil
}

// ReplaceEmbedder atomically swaps the embedder registered under name —
// the hot-reload path for a freshly compiled network. Requests that
// resolved the old embedder finish on it (embedders are stateless
// shared-read objects, so there is nothing to drain); requests arriving
// after the swap resolve the new one. Replacing an unknown name returns
// ErrUnknownEmbedder: a reload must not silently grow the registry.
func (r *Registry) ReplaceEmbedder(name string, e Embedder) error {
	if e == nil {
		return fmt.Errorf("serve: cannot replace embedder %q with nil", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.embedders[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEmbedder, name)
	}
	r.embedders[name] = e
	return nil
}

// Embedder resolves an embedder by name. An empty name resolves iff
// exactly one embedder is registered (the single-embedder shorthand,
// mirroring Get).
func (r *Registry) Embedder(name string) (Embedder, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.embedders) == 1 {
			for _, e := range r.embedders {
				return e, nil
			}
		}
		return nil, fmt.Errorf("%w: no embedder named and %d registered", ErrUnknownEmbedder, len(r.embedders))
	}
	e, ok := r.embedders[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEmbedder, name)
	}
	return e, nil
}

// EmbedderNames lists the registered embedder names, sorted.
func (r *Registry) EmbedderNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.embedders))
	for n := range r.embedders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close closes every registered coalescer and empties the registry.
// Embedders are stateless and simply dropped.
func (r *Registry) Close() {
	r.mu.Lock()
	models := r.models
	r.models = make(map[string]*Coalescer)
	r.embedders = make(map[string]Embedder)
	r.mu.Unlock()
	for _, c := range models {
		c.Close()
	}
}
