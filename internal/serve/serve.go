// Package serve is the concurrent serving layer over the batched
// inference engine (internal/infer): the seam that turns the repo's
// evaluation-time readout into a traffic-facing subsystem.
//
// Three pieces compose:
//
//   - Coalescer: a micro-batching front. Callers submit single probes
//     (Classify); the coalescer merges them into engine batches under a
//     MaxBatch/MaxDelay admission policy, runs batches through one shared
//     concurrency-safe infer.Engine, and demultiplexes per-probe Results
//     back to the waiting callers. Single-probe callers get within a few
//     percent of raw batched-Query throughput (see BenchmarkServeCoalesced
//     at the repo root) without ever seeing a batch.
//   - Registry: a named model table, so one process serves the float,
//     packed-binary, and analog-crossbar backends side by side. It also
//     names Embedders: frozen networks run through the stateless nn
//     Infer path, turning raw inputs into probes so the process serves
//     end to end (raw input → embed → coalesce → readout).
//   - Handler: a net/http JSON API over a Registry — POST /v1/classify,
//     POST /v1/embed-classify, GET /healthz, GET /stats — the surface
//     cmd/hdcserve exposes.
//
// The layer holds no model state of its own: every scaling feature the
// ROADMAP plans (result caching, async serving, multi-node sharding)
// slots in between the Coalescer and the Engine.
package serve

import (
	"errors"
	"time"

	"repro/internal/infer"
)

// Typed errors returned by Classify and the registry.
var (
	// ErrClosed: the coalescer has been closed and accepts no new probes.
	ErrClosed = errors.New("serve: coalescer closed")
	// ErrBadProbe: the submitted probe is missing, malformed, or does not
	// match the backend's dimensionality or representation.
	ErrBadProbe = errors.New("serve: bad probe")
	// ErrUnknownModel: the registry holds no model under the given name.
	ErrUnknownModel = errors.New("serve: unknown model")
	// ErrDuplicateModel: a model is already registered under the name.
	ErrDuplicateModel = errors.New("serve: duplicate model")
	// ErrUnknownEmbedder: the registry holds no embedder under the name.
	ErrUnknownEmbedder = errors.New("serve: unknown embedder")
	// ErrDuplicateEmbedder: an embedder is already registered under the name.
	ErrDuplicateEmbedder = errors.New("serve: duplicate embedder")
	// ErrBadInput: a raw embed input is missing, malformed, or does not
	// match the embedder's input geometry.
	ErrBadInput = errors.New("serve: bad embed input")
)

// Querier is the classification surface the coalescer batches in front
// of: a local infer.Engine or a dist.Router fanning out to shard
// processes. The coalescer — and everything above it, registry and HTTP
// included — cannot tell the difference; that indifference is what lets
// `hdcserve -router` serve a distributed class memory through the same
// micro-batching front as a local one. Implementations must be safe for
// concurrent TryQuery calls and must return freshly allocated results
// (the coalescer demultiplexes them to waiting callers).
type Querier interface {
	TryQuery(batch *infer.Batch, k int) ([]infer.Result, error)
	// Name is the served backend's name, surfaced in API responses.
	Name() string
	// Classes is the global class count.
	Classes() int
	// Dim is the probe dimensionality, enforced at admission.
	Dim() int
	// Requires is the probe representation the backend consumes; dense
	// probes are sign-packed at admission for RepPacked queriers.
	Requires() infer.Representation
}

// Config is the coalescer's admission policy.
type Config struct {
	// MaxBatch flushes a pending batch once it holds this many probes
	// (default 32, the evaluation pipeline's embedding batch size).
	MaxBatch int
	// MaxDelay flushes a non-empty pending batch at latest this long
	// after its first probe was admitted (default 2ms), bounding the
	// latency a lone probe pays for batching.
	MaxDelay time.Duration
	// Queue is the admission queue capacity (default 4×MaxBatch). A full
	// queue applies backpressure: Classify blocks until the coalescer
	// drains or the caller's context expires.
	Queue int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.MaxBatch
	}
	return c
}

// Stats is a snapshot of a coalescer's serving counters, also the
// per-model payload of the HTTP /stats endpoint.
type Stats struct {
	Requests     uint64  `json:"requests"`      // probes admitted
	Rejected     uint64  `json:"rejected"`      // probes rejected before admission (bad probe, closed)
	Batches      uint64  `json:"batches"`       // engine batches flushed
	FullFlushes  uint64  `json:"full_flushes"`  // batches flushed because they reached MaxBatch
	TimerFlushes uint64  `json:"timer_flushes"` // batches flushed by the MaxDelay deadline
	DrainFlushes uint64  `json:"drain_flushes"` // batches flushed while shutting down
	LargestBatch int     `json:"largest_batch"` // largest batch flushed so far
	MeanBatch    float64 `json:"mean_batch"`    // mean probes per flushed batch
	InFlight     int64   `json:"in_flight"`     // batches currently executing on the engine
}
