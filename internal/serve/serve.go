// Package serve is the concurrent serving layer over the batched
// inference engine (internal/infer): the seam that turns the repo's
// evaluation-time readout into a traffic-facing subsystem.
//
// Three pieces compose:
//
//   - Coalescer: a micro-batching front. Callers submit single probes
//     (Classify); the coalescer merges them into engine batches under a
//     MaxBatch/MaxDelay admission policy, runs batches through one shared
//     concurrency-safe infer.Engine, and demultiplexes per-probe Results
//     back to the waiting callers. Single-probe callers get within a few
//     percent of raw batched-Query throughput (see BenchmarkServeCoalesced
//     at the repo root) without ever seeing a batch.
//   - Registry: a named model table, so one process serves the float,
//     packed-binary, and analog-crossbar backends side by side. It also
//     names Embedders: frozen networks run through the stateless nn
//     Infer path, turning raw inputs into probes so the process serves
//     end to end (raw input → embed → coalesce → readout).
//   - Handler: a net/http JSON API over a Registry — POST /v1/classify,
//     POST /v1/embed-classify, GET /healthz, GET /stats — the surface
//     cmd/hdcserve exposes.
//
// The layer holds no model state of its own: every scaling feature the
// ROADMAP plans (result caching, async serving, multi-node sharding)
// slots in between the Coalescer and the Engine.
package serve

import (
	"errors"
	"runtime"
	"time"

	"repro/internal/infer"
	"repro/internal/lat"
)

// Typed errors returned by Classify and the registry.
var (
	// ErrClosed: the coalescer has been closed and accepts no new probes.
	ErrClosed = errors.New("serve: coalescer closed")
	// ErrOverloaded: the admission queue is past its watermark; the
	// request was shed without touching the engine. The HTTP layer maps
	// it to 429 with a Retry-After hint — fail fast is the contract: a
	// caller that would have waited past its deadline anyway learns
	// immediately, and the queue depth (hence the latency of accepted
	// requests) stays bounded.
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	// ErrIncompatibleSwap: SwapQuerier was offered a querier whose
	// geometry (dimensionality or probe representation) does not match
	// the one the coalescer was built around.
	ErrIncompatibleSwap = errors.New("serve: incompatible querier swap")
	// ErrBadProbe: the submitted probe is missing, malformed, or does not
	// match the backend's dimensionality or representation.
	ErrBadProbe = errors.New("serve: bad probe")
	// ErrUnknownModel: the registry holds no model under the given name.
	ErrUnknownModel = errors.New("serve: unknown model")
	// ErrDuplicateModel: a model is already registered under the name.
	ErrDuplicateModel = errors.New("serve: duplicate model")
	// ErrUnknownEmbedder: the registry holds no embedder under the name.
	ErrUnknownEmbedder = errors.New("serve: unknown embedder")
	// ErrDuplicateEmbedder: an embedder is already registered under the name.
	ErrDuplicateEmbedder = errors.New("serve: duplicate embedder")
	// ErrBadInput: a raw embed input is missing, malformed, or does not
	// match the embedder's input geometry.
	ErrBadInput = errors.New("serve: bad embed input")
)

// Querier is the classification surface the coalescer batches in front
// of: a local infer.Engine or a dist.Router fanning out to shard
// processes. The coalescer — and everything above it, registry and HTTP
// included — cannot tell the difference; that indifference is what lets
// `hdcserve -router` serve a distributed class memory through the same
// micro-batching front as a local one. Implementations must be safe for
// concurrent TryQuery calls and must return freshly allocated results
// (the coalescer demultiplexes them to waiting callers).
type Querier interface {
	TryQuery(batch *infer.Batch, k int) ([]infer.Result, error)
	// Name is the served backend's name, surfaced in API responses.
	Name() string
	// Classes is the global class count.
	Classes() int
	// Dim is the probe dimensionality, enforced at admission.
	Dim() int
	// Requires is the probe representation the backend consumes; dense
	// probes are sign-packed at admission for RepPacked queriers.
	Requires() infer.Representation
}

// Config is the coalescer's admission policy.
type Config struct {
	// MaxBatch flushes a pending batch once it holds this many probes
	// (default 32, the evaluation pipeline's embedding batch size).
	MaxBatch int
	// MaxDelay flushes a non-empty pending batch at latest this long
	// after its first probe was admitted (default 2ms), bounding the
	// latency a lone probe pays for batching.
	MaxDelay time.Duration
	// Queue is the admission queue capacity (default 4×MaxBatch). A full
	// queue applies backpressure: Classify blocks until the coalescer
	// drains or the caller's context expires.
	Queue int
	// Watermark is the admission-queue depth (requests admitted but not
	// yet dispatched to the engine) beyond which new requests are shed
	// with ErrOverloaded instead of queuing. 0 disables shedding and
	// keeps the legacy blocking backpressure; when set, Queue is raised
	// to at least Watermark so admission below the watermark never
	// blocks. cmd/hdcserve enables it by default (-watermark).
	Watermark int
	// MaxInFlight caps concurrently executing engine batches. 0 means
	// unbounded (the legacy behavior: a slow batch never delays the
	// next). When Watermark is set it defaults to 2×GOMAXPROCS: bounding
	// in-flight work is what makes the watermark effective — a slow
	// backend fills the execution slots, the admission loop blocks, the
	// queue builds to the watermark, and new arrivals shed. Without the
	// cap a slow backend just accumulates unbounded concurrent batches
	// and the queue never reports the overload.
	MaxInFlight int
	// MinDelay is the floor of the adaptive flush delay (default 100µs,
	// clamped to MaxDelay). The coalescer tracks the observed arrival
	// rate and arms each batch's flush timer to the expected time for
	// the batch to fill, clamped to [MinDelay, MaxDelay]: under load a
	// lone probe waits far less than MaxDelay (the batch will fill or
	// the short timer fires), while an idle service keeps the full
	// MaxDelay window to give stragglers a chance to coalesce. MaxDelay
	// remains the hard latency bound either way.
	MinDelay time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.MaxBatch
	}
	if c.Watermark > 0 && c.Queue < c.Watermark {
		c.Queue = c.Watermark
	}
	if c.Watermark > 0 && c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 100 * time.Microsecond
	}
	if c.MinDelay > c.MaxDelay {
		c.MinDelay = c.MaxDelay
	}
	return c
}

// Stats is a snapshot of a coalescer's serving counters, also the
// per-model payload of the HTTP /stats endpoint.
type Stats struct {
	Requests     uint64  `json:"requests"`      // probes admitted
	Rejected     uint64  `json:"rejected"`      // probes rejected before admission (bad probe, closed)
	Shed         uint64  `json:"shed"`          // probes shed at the admission watermark (ErrOverloaded)
	Cancelled    uint64  `json:"cancelled"`     // admitted probes dropped at drain: caller ctx already done
	Batches      uint64  `json:"batches"`       // engine batches flushed
	FullFlushes  uint64  `json:"full_flushes"`  // batches flushed because they reached MaxBatch
	TimerFlushes uint64  `json:"timer_flushes"` // batches flushed by the adaptive delay deadline
	DrainFlushes uint64  `json:"drain_flushes"` // batches flushed while shutting down
	LargestBatch int     `json:"largest_batch"` // largest batch flushed so far
	MeanBatch    float64 `json:"mean_batch"`    // mean probes per flushed batch
	InFlight     int64   `json:"in_flight"`     // batches currently executing on the engine
	QueueDepth   int64   `json:"queue_depth"`   // probes admitted but not yet dispatched
	// CurDelay is the most recently armed adaptive flush delay — MaxDelay
	// when idle, shrinking toward MinDelay as the arrival rate rises.
	CurDelay string `json:"cur_delay,omitempty"`

	// Per-stage latency histograms, the internal decomposition of what
	// cmd/hdcload measures externally: how long probes waited in the
	// admission queue, and how long engine/router readout took per batch.
	QueueWait *lat.Snapshot `json:"queue_wait,omitempty"`
	Readout   *lat.Snapshot `json:"readout,omitempty"`
}
