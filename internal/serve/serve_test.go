package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/hdc"
	"repro/internal/imc"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// fixture builds a frozen class memory in both representations plus a
// set of dense probes with their serial-path reference results.
type fixture struct {
	phi    *tensor.Tensor
	im     *hdc.ItemMemory
	labels []string
	dense  *tensor.Tensor // [n, d] probes
}

func newFixture(classes, d, probes int, seed int64) *fixture {
	rng := rand.New(rand.NewSource(seed))
	f := &fixture{
		phi:    tensor.Rademacher(rng, classes, d),
		im:     hdc.NewItemMemory(d),
		labels: make([]string, classes),
	}
	for c := 0; c < classes; c++ {
		f.labels[c] = fmt.Sprintf("class%d", c)
		b := hdc.NewBinary(d)
		for j, v := range f.phi.Row(c) {
			if v < 0 {
				b.SetBit(j, 1)
			}
		}
		f.im.Store(f.labels[c], b)
	}
	f.dense = tensor.Randn(rng, 1, probes, d)
	return f
}

func (f *fixture) backends() []infer.Backend {
	return []infer.Backend{
		infer.NewFloatBackend(f.phi, f.labels, 1),
		infer.NewBinaryBackend(f.im),
		infer.NewCrossbarBackend(f.phi, f.labels, 1, imc.Ideal()),
	}
}

// Concurrent single-probe Classify calls through the coalescer must
// return exactly what a direct batched Engine.Query returns for the same
// probes — per backend, under the race detector in CI.
func TestCoalescerParityWithDirectQuery(t *testing.T) {
	const classes, d, probes = 23, 256, 48
	f := newFixture(classes, d, probes, 1)
	for _, be := range f.backends() {
		eng := infer.New(be, infer.WithWorkers(3))
		want := eng.Query(infer.DenseBatch(f.dense), 4)

		co := NewCoalescer(eng, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
		var wg sync.WaitGroup
		errs := make(chan error, probes)
		for p := 0; p < probes; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				res, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(p)}, 4)
				if err != nil {
					errs <- fmt.Errorf("probe %d: %v", p, err)
					return
				}
				if len(res.TopK) != len(want[p].TopK) {
					errs <- fmt.Errorf("probe %d: %d hits, want %d", p, len(res.TopK), len(want[p].TopK))
					return
				}
				for i := range res.TopK {
					if res.TopK[i] != want[p].TopK[i] {
						errs <- fmt.Errorf("backend %q probe %d rank %d: %+v, want %+v",
							be.Name(), p, i, res.TopK[i], want[p].TopK[i])
						return
					}
				}
			}(p)
		}
		wg.Wait()
		co.Close()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		s := co.Stats()
		if s.Requests != probes {
			t.Fatalf("backend %q: stats report %d requests, want %d", be.Name(), s.Requests, probes)
		}
		if s.Batches == 0 || s.Batches > probes {
			t.Fatalf("backend %q: implausible batch count %d", be.Name(), s.Batches)
		}
	}
}

// The coalescer must actually coalesce: with many concurrent callers and
// a generous MaxDelay, mean batch size has to rise well above 1.
func TestCoalescerMergesConcurrentRequests(t *testing.T) {
	const classes, d, probes = 11, 128, 64
	f := newFixture(classes, d, probes, 2)
	eng := infer.New(infer.NewBinaryBackend(f.im), infer.WithWorkers(2))
	co := NewCoalescer(eng, Config{MaxBatch: 16, MaxDelay: 50 * time.Millisecond})
	defer co.Close()

	var wg sync.WaitGroup
	for p := 0; p < probes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if _, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(p)}, 1); err != nil {
				panic(err)
			}
		}(p)
	}
	wg.Wait()
	s := co.Stats()
	if s.MeanBatch < 2 {
		t.Fatalf("mean batch %.2f — the coalescer is not batching (stats %+v)", s.MeanBatch, s)
	}
	if s.LargestBatch > 16 {
		t.Fatalf("batch of %d exceeded MaxBatch 16", s.LargestBatch)
	}
}

// A lone probe must not wait forever: the MaxDelay deadline flushes it.
func TestCoalescerMaxDelayFlushesLoneProbe(t *testing.T) {
	const classes, d = 7, 64
	f := newFixture(classes, d, 1, 3)
	eng := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1))
	co := NewCoalescer(eng, Config{MaxBatch: 1024, MaxDelay: 5 * time.Millisecond})
	defer co.Close()

	start := time.Now()
	res, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 1 {
		t.Fatalf("got %d hits, want 1", len(res.TopK))
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("lone probe waited %v; MaxDelay flush not working", waited)
	}
	if s := co.Stats(); s.TimerFlushes == 0 {
		t.Fatalf("no timer flush recorded: %+v", s)
	}
}

// Per-request k: callers in the same batch may ask for different k and
// each gets exactly its own prefix of the ranking.
func TestCoalescerPerRequestK(t *testing.T) {
	const classes, d, probes = 13, 64, 6
	f := newFixture(classes, d, probes, 4)
	eng := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1))
	want := eng.Query(infer.DenseBatch(f.dense), classes)
	co := NewCoalescer(eng, Config{MaxBatch: probes, MaxDelay: 100 * time.Millisecond})
	defer co.Close()

	var wg sync.WaitGroup
	for p := 0; p < probes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			k := 1 + p*2
			if k > classes {
				k = classes
			}
			res, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(p)}, k)
			if err != nil {
				panic(err)
			}
			if len(res.TopK) != k {
				panic(fmt.Sprintf("probe %d asked k=%d, got %d hits", p, k, len(res.TopK)))
			}
			for i := range res.TopK {
				if res.TopK[i] != want[p].TopK[i] {
					panic(fmt.Sprintf("probe %d rank %d mismatch", p, i))
				}
			}
		}(p)
	}
	wg.Wait()
}

// Bad probes are rejected at admission with ErrBadProbe naming the
// problem; the binary backend accepts dense probes via sign-packing.
func TestCoalescerProbeValidation(t *testing.T) {
	const classes, d = 7, 64
	f := newFixture(classes, d, 2, 5)
	ctx := context.Background()

	floatCo := NewCoalescer(infer.New(infer.NewFloatBackend(f.phi, f.labels, 1)), Config{})
	defer floatCo.Close()
	if _, err := floatCo.Classify(ctx, Probe{Packed: f.im.Vector(0)}, 1); !errors.Is(err, ErrBadProbe) {
		t.Fatalf("packed probe against float backend: err = %v, want ErrBadProbe", err)
	}
	if _, err := floatCo.Classify(ctx, Probe{Dense: make([]float32, d+1)}, 1); !errors.Is(err, ErrBadProbe) {
		t.Fatalf("wrong-dim dense probe: err = %v, want ErrBadProbe", err)
	}
	if _, err := floatCo.Classify(ctx, Probe{}, 1); !errors.Is(err, ErrBadProbe) {
		t.Fatalf("empty probe: err = %v, want ErrBadProbe", err)
	}

	binCo := NewCoalescer(infer.New(infer.NewBinaryBackend(f.im)), Config{})
	defer binCo.Close()
	fromDense, err := binCo.Classify(ctx, Probe{Dense: f.dense.Row(0)}, 1)
	if err != nil {
		t.Fatalf("dense probe against binary backend: %v", err)
	}
	fromPacked, err := binCo.Classify(ctx, Probe{Packed: infer.PackSign(f.dense)[0]}, 1)
	if err != nil {
		t.Fatalf("packed probe against binary backend: %v", err)
	}
	if fromDense.TopK[0] != fromPacked.TopK[0] {
		t.Fatalf("dense (%+v) and packed (%+v) probes disagree", fromDense.TopK[0], fromPacked.TopK[0])
	}
}

// After Close, Classify fails with ErrClosed; probes admitted before
// Close still get answers (drain flush).
func TestCoalescerCloseDrainsAndRejects(t *testing.T) {
	const classes, d = 7, 64
	f := newFixture(classes, d, 4, 6)
	eng := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1))
	co := NewCoalescer(eng, Config{MaxBatch: 1024, MaxDelay: time.Hour})

	var wg sync.WaitGroup
	got := make([]error, 4)
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			_, got[p] = co.Classify(context.Background(), Probe{Dense: f.dense.Row(p)}, 1)
		}(p)
	}
	// Give the callers time to enqueue, then close: the drain flush must
	// answer all four.
	time.Sleep(50 * time.Millisecond)
	co.Close()
	wg.Wait()
	for p, err := range got {
		if err != nil {
			t.Fatalf("pre-close probe %d: %v", p, err)
		}
	}
	if _, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(0)}, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Classify err = %v, want ErrClosed", err)
	}
	if s := co.Stats(); s.DrainFlushes != 1 {
		t.Fatalf("drain flushes = %d, want 1 (%+v)", s.DrainFlushes, s)
	}
	co.Close() // idempotent
}

// A caller whose context expires while waiting unblocks with the
// context's error; the batch still executes for everyone else.
func TestCoalescerContextCancellation(t *testing.T) {
	const classes, d = 7, 64
	f := newFixture(classes, d, 2, 7)
	eng := infer.New(infer.NewFloatBackend(f.phi, f.labels, 1))
	co := NewCoalescer(eng, Config{MaxBatch: 1024, MaxDelay: 200 * time.Millisecond})
	defer co.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := co.Classify(ctx, Probe{Dense: f.dense.Row(0)}, 1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Classify err = %v, want context.Canceled", err)
	}
	// An uncancelled caller on the same coalescer still gets served.
	if _, err := co.Classify(context.Background(), Probe{Dense: f.dense.Row(1)}, 1); err != nil {
		t.Fatalf("follow-up Classify: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	const classes, d = 7, 64
	f := newFixture(classes, d, 1, 8)
	reg := NewRegistry()
	floatCo := NewCoalescer(infer.New(infer.NewFloatBackend(f.phi, f.labels, 1)), Config{})
	binCo := NewCoalescer(infer.New(infer.NewBinaryBackend(f.im)), Config{})

	if err := reg.Register("float", floatCo); err != nil {
		t.Fatal(err)
	}
	// Single registered model: the empty name resolves to it.
	if co, err := reg.Get(""); err != nil || co != floatCo {
		t.Fatalf("Get(\"\") with one model = (%v, %v), want the model", co, err)
	}
	if err := reg.Register("binary", binCo); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("float", floatCo); !errors.Is(err, ErrDuplicateModel) {
		t.Fatalf("duplicate register err = %v, want ErrDuplicateModel", err)
	}
	if _, err := reg.Get(""); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("ambiguous empty name err = %v, want ErrUnknownModel", err)
	}
	if _, err := reg.Get("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown name err = %v, want ErrUnknownModel", err)
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "binary" || names[1] != "float" {
		t.Fatalf("Names() = %v", names)
	}
	reg.Close()
	if _, err := floatCo.Classify(context.Background(), Probe{Dense: f.dense.Row(0)}, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("registry Close did not close coalescers: %v", err)
	}
	if len(reg.Names()) != 0 {
		t.Fatal("registry not emptied by Close")
	}
}
