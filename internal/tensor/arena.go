package tensor

// Arena is a slab-backed bump allocator for short-lived tensors: the
// per-call workspace of the stateless inference path (internal/nn
// Scratch) and any other hot loop that would otherwise allocate
// activation-sized tensors on every call.
//
// Alloc carves zero-filled tensors out of large reusable slabs; Reset
// reclaims everything at once. Tensor headers and shape slices are also
// served from arena-owned storage, so a warm arena hands out tensors
// with ZERO heap allocations per call — the property the zero-alloc
// guards on ResNet.Infer pin. An Arena is NOT safe for concurrent use —
// the intended pattern is one arena per goroutine (checked out of a
// sync.Pool), reset between independent inference calls.
type Arena struct {
	slabs [][]float32 // slabs[len-1] is the active slab
	off   int         // bump offset into the active slab
	total int         // total capacity across all slabs

	slabs8 [][]int8 // int8 slabs (quantized compiled plans)
	off8   int
	total8 int

	hdrs   []*Tensor // reusable tensor headers, recycled on Reset
	hdrOff int
	dims   []int // shape storage, recycled on Reset
	dimOff int
}

// arenaMinSlab is the minimum slab size in float32 elements (256 KiB).
// Small enough that a lone Linear layer doesn't pin megabytes, large
// enough that a ResNet forward touches only a handful of slabs before
// the first Reset coalesces them.
const arenaMinSlab = 1 << 16

// alloc returns a zeroed slice of n float32s carved from the arena.
func (a *Arena) alloc(n int) []float32 {
	out := a.allocRaw(n)
	clear(out)
	return out
}

// allocRaw carves n float32s from the arena without clearing them; the
// contents are whatever a previous pass left behind.
func (a *Arena) allocRaw(n int) []float32 {
	if len(a.slabs) == 0 || n > len(a.slabs[len(a.slabs)-1])-a.off {
		size := arenaMinSlab
		if n > size {
			size = n
		}
		a.slabs = append(a.slabs, make([]float32, size))
		a.total += size
		a.off = 0
	}
	slab := a.slabs[len(a.slabs)-1]
	out := slab[a.off : a.off+n : a.off+n]
	a.off += n
	return out
}

// header returns a recycled (or, on first use, new) tensor header. The
// header's previous contents are fully overwritten by the caller.
func (a *Arena) header() *Tensor {
	if a.hdrOff == len(a.hdrs) {
		a.hdrs = append(a.hdrs, new(Tensor))
	}
	t := a.hdrs[a.hdrOff]
	a.hdrOff++
	return t
}

// shapeCopy stores shape in arena-owned int storage and returns the
// stored copy. The block grows geometrically when a pass overflows it
// (like the float slabs), so after one warm pass the steady state hands
// out shapes allocation-free no matter how many tensors a pass needs.
func (a *Arena) shapeCopy(shape []int) []int {
	if a.dimOff+len(shape) > len(a.dims) {
		size := 2 * len(a.dims)
		if size < 256 {
			size = 256
		}
		if a.dimOff+len(shape) > size {
			size = a.dimOff + len(shape)
		}
		// Old handed-out shape slices keep the previous backing alive;
		// they are invalid after the next Reset anyway. The used prefix is
		// carried over so those slices' storage is not reused before Reset.
		dims := make([]int, size)
		copy(dims, a.dims[:a.dimOff])
		a.dims = dims
	}
	dst := a.dims[a.dimOff : a.dimOff+len(shape) : a.dimOff+len(shape)]
	a.dimOff += len(shape)
	copy(dst, shape)
	return dst
}

// Alloc returns a zero-filled tensor of the given shape backed by the
// arena. The tensor (header included) is valid until the next Reset;
// callers that need it to outlive the arena must Clone it first.
func (a *Arena) Alloc(shape ...int) *Tensor {
	n := checkShape("Arena.Alloc", shape)
	t := a.header()
	t.Data = a.alloc(n)
	t.shape = a.shapeCopy(shape)
	return t
}

// AllocLike returns a zero-filled arena tensor with ref's shape, without
// the shape-copy allocation t.Shape() would cost.
func (a *Arena) AllocLike(ref *Tensor) *Tensor {
	t := a.header()
	t.Data = a.alloc(len(ref.Data))
	t.shape = a.shapeCopy(ref.shape)
	return t
}

// Grab returns an UNINITIALIZED slice of n float32s carved from the
// arena, valid until the next Reset. It is Alloc without the zero fill
// and without a tensor header: the compiled inference plan reserves its
// whole activation slab this way and overwrites every region it reads,
// so the per-call memclr of activation-sized buffers disappears.
// Callers must not read elements they have not written.
func (a *Arena) Grab(n int) []float32 { return a.allocRaw(n) }

// Grab8 is Grab for int8 storage: an UNINITIALIZED slice of n int8s
// carved from the arena's int8 slabs, valid until the next Reset. The
// quantized compiled plan reserves its activation slab this way.
func (a *Arena) Grab8(n int) []int8 {
	if len(a.slabs8) == 0 || n > len(a.slabs8[len(a.slabs8)-1])-a.off8 {
		size := arenaMinSlab
		if n > size {
			size = n
		}
		a.slabs8 = append(a.slabs8, make([]int8, size))
		a.total8 += size
		a.off8 = 0
	}
	slab := a.slabs8[len(a.slabs8)-1]
	out := slab[a.off8 : a.off8+n : a.off8+n]
	a.off8 += n
	return out
}

// Wrap returns an arena-backed tensor header over data (not copied)
// with the given shape; the element count must match. This is how the
// compiled plan hands out its slab regions as tensors without heap
// allocations.
func (a *Arena) Wrap(data []float32, shape ...int) *Tensor {
	n := checkShape("Arena.Wrap", shape)
	if n != len(data) {
		panic("tensor.Arena.Wrap: element count mismatch")
	}
	t := a.header()
	t.Data = data
	t.shape = a.shapeCopy(shape)
	return t
}

// View returns an arena-backed tensor header over src's data with a new
// shape (element count must match) — a Reshape whose header lives in the
// arena. The data is shared with src, not copied.
func (a *Arena) View(src *Tensor, shape ...int) *Tensor {
	n := checkShape("Arena.View", shape)
	if n != len(src.Data) {
		panic("tensor.Arena.View: element count mismatch")
	}
	t := a.header()
	t.Data = src.Data
	t.shape = a.shapeCopy(shape)
	return t
}

// Reset reclaims every allocation at once, invalidating all tensors
// (headers included) handed out since the previous Reset. If the arena
// overflowed into multiple slabs, they are coalesced into one slab of
// the combined capacity, so the steady state after the first full pass
// is a single slab and zero per-call allocations.
func (a *Arena) Reset() {
	if len(a.slabs) > 1 {
		a.slabs = [][]float32{make([]float32, a.total)}
	}
	if len(a.slabs8) > 1 {
		a.slabs8 = [][]int8{make([]int8, a.total8)}
	}
	a.off = 0
	a.off8 = 0
	a.hdrOff = 0
	a.dimOff = 0
}

// Cap returns the arena's total capacity in float32 elements.
func (a *Arena) Cap() int { return a.total }
