package tensor

// Arena is a slab-backed bump allocator for short-lived tensors: the
// per-call workspace of the stateless inference path (internal/nn
// Scratch) and any other hot loop that would otherwise allocate
// activation-sized tensors on every call.
//
// Alloc carves zero-filled tensors out of large reusable slabs; Reset
// reclaims everything at once. An Arena is NOT safe for concurrent use —
// the intended pattern is one arena per goroutine (checked out of a
// sync.Pool), reset between independent inference calls.
type Arena struct {
	slabs [][]float32 // slabs[len-1] is the active slab
	off   int         // bump offset into the active slab
	total int         // total capacity across all slabs
}

// arenaMinSlab is the minimum slab size in float32 elements (256 KiB).
// Small enough that a lone Linear layer doesn't pin megabytes, large
// enough that a ResNet forward touches only a handful of slabs before
// the first Reset coalesces them.
const arenaMinSlab = 1 << 16

// alloc returns a zeroed slice of n float32s carved from the arena.
func (a *Arena) alloc(n int) []float32 {
	if len(a.slabs) == 0 || n > len(a.slabs[len(a.slabs)-1])-a.off {
		size := arenaMinSlab
		if n > size {
			size = n
		}
		a.slabs = append(a.slabs, make([]float32, size))
		a.total += size
		a.off = 0
	}
	slab := a.slabs[len(a.slabs)-1]
	out := slab[a.off : a.off+n : a.off+n]
	a.off += n
	clear(out)
	return out
}

// Alloc returns a zero-filled tensor of the given shape backed by the
// arena. The tensor is valid until the next Reset; callers that need it
// to outlive the arena must Clone it first.
func (a *Arena) Alloc(shape ...int) *Tensor {
	n := checkShape("Arena.Alloc", shape)
	return &Tensor{Data: a.alloc(n), shape: append([]int(nil), shape...)}
}

// Reset reclaims every allocation at once, invalidating all tensors
// handed out since the previous Reset. If the arena overflowed into
// multiple slabs, they are coalesced into one slab of the combined
// capacity, so the steady state after the first full pass is a single
// slab and zero per-call allocations.
func (a *Arena) Reset() {
	if len(a.slabs) > 1 {
		a.slabs = [][]float32{make([]float32, a.total)}
	}
	a.off = 0
}

// Cap returns the arena's total capacity in float32 elements.
func (a *Arena) Cap() int { return a.total }
