package tensor

import (
	"fmt"
	"math"
)

// binOp applies f elementwise over equal-shaped tensors into a new tensor.
func binOp(op string, a, b *Tensor, f func(x, y float32) float32) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor.%s: shape mismatch %v vs %v", op, a.shape, b.shape))
	}
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i], b.Data[i])
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Tensor) *Tensor { return binOp("Add", a, b, func(x, y float32) float32 { return x + y }) }

// Sub returns a-b elementwise.
func Sub(a, b *Tensor) *Tensor { return binOp("Sub", a, b, func(x, y float32) float32 { return x - y }) }

// Mul returns a*b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor { return binOp("Mul", a, b, func(x, y float32) float32 { return x * y }) }

// Div returns a/b elementwise.
func Div(a, b *Tensor) *Tensor { return binOp("Div", a, b, func(x, y float32) float32 { return x / y }) }

// AddInPlace accumulates b into a elementwise and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor.AddInPlace: shape mismatch %v vs %v", a.shape, b.shape))
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
	return a
}

// Scale returns a*s elementwise in a new tensor.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// ScaleInPlace multiplies every element of a by s and returns a.
func ScaleInPlace(a *Tensor, s float32) *Tensor {
	for i := range a.Data {
		a.Data[i] *= s
	}
	return a
}

// AddScalar returns a+s elementwise in a new tensor.
func AddScalar(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + s
	}
	return out
}

// Apply returns f applied elementwise in a new tensor.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i])
	}
	return out
}

// ApplyInPlace applies f elementwise in place and returns a.
func ApplyInPlace(a *Tensor, f func(float32) float32) *Tensor {
	for i := range a.Data {
		a.Data[i] = f(a.Data[i])
	}
	return a
}

// Sigmoid returns 1/(1+exp(-x)) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	return Apply(a, func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	})
}

// Tanh returns tanh(x) elementwise.
func Tanh(a *Tensor) *Tensor {
	return Apply(a, func(x float32) float32 { return float32(math.Tanh(float64(x))) })
}

// ReLU returns max(0, x) elementwise.
func ReLU(a *Tensor) *Tensor {
	return Apply(a, func(x float32) float32 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// Sign returns -1, 0, or +1 elementwise; used to bipolarize bundled
// hypervector sums on the real-valued side.
func Sign(a *Tensor) *Tensor {
	return Apply(a, func(x float32) float32 {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		default:
			return 0
		}
	})
}

// Clamp limits every element to [lo, hi].
func Clamp(a *Tensor, lo, hi float32) *Tensor {
	return Apply(a, func(x float32) float32 {
		if x < lo {
			return lo
		}
		if x > hi {
			return hi
		}
		return x
	})
}

// AddRowVector adds a length-cols vector v to every row of the 2-D tensor a
// (broadcast over rows), returning a new tensor. Used for bias addition.
func AddRowVector(a *Tensor, v *Tensor) *Tensor {
	if a.Rank() != 2 || v.Rank() != 1 || a.Dim(1) != v.Dim(0) {
		panic(fmt.Sprintf("tensor.AddRowVector: shapes %v and %v incompatible", a.shape, v.shape))
	}
	out := New(a.shape...)
	rows, cols := a.Dim(0), a.Dim(1)
	for r := 0; r < rows; r++ {
		ar := a.Data[r*cols : (r+1)*cols]
		or := out.Data[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			or[c] = ar[c] + v.Data[c]
		}
	}
	return out
}

// MulRowVector multiplies every row of the 2-D tensor a by a length-cols
// vector v (broadcast over rows), returning a new tensor.
func MulRowVector(a *Tensor, v *Tensor) *Tensor {
	if a.Rank() != 2 || v.Rank() != 1 || a.Dim(1) != v.Dim(0) {
		panic(fmt.Sprintf("tensor.MulRowVector: shapes %v and %v incompatible", a.shape, v.shape))
	}
	out := New(a.shape...)
	rows, cols := a.Dim(0), a.Dim(1)
	for r := 0; r < rows; r++ {
		ar := a.Data[r*cols : (r+1)*cols]
		or := out.Data[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			or[c] = ar[c] * v.Data[c]
		}
	}
	return out
}
