package tensor

import (
	"fmt"
	"math"
)

// Eye returns the n×n identity matrix.
func Eye(n int) *Tensor {
	t := New(n, n)
	for i := 0; i < n; i++ {
		t.Data[i*n+i] = 1
	}
	return t
}

// AddDiagonal adds v to every diagonal element of the square matrix a in
// place and returns a. Used for ridge/Tikhonov regularization in ESZSL.
func AddDiagonal(a *Tensor, v float32) *Tensor {
	if a.Rank() != 2 || a.Dim(0) != a.Dim(1) {
		panic(fmt.Sprintf("tensor.AddDiagonal: want square matrix, have %v", a.shape))
	}
	n := a.Dim(0)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += v
	}
	return a
}

// Cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix a = L·Lᵀ. It returns an error if a is not
// positive definite (a pivot fails to be strictly positive).
func Cholesky(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || a.Dim(0) != a.Dim(1) {
		panic(fmt.Sprintf("tensor.Cholesky: want square matrix, have %v", a.shape))
	}
	n := a.Dim(0)
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < j; k++ {
				s += float64(l.Data[i*n+k]) * float64(l.Data[j*n+k])
			}
			if i == j {
				d := float64(a.Data[i*n+i]) - s
				if d <= 0 {
					return nil, fmt.Errorf("tensor.Cholesky: matrix not positive definite at pivot %d (d=%g)", i, d)
				}
				l.Data[i*n+j] = float32(math.Sqrt(d))
			} else {
				l.Data[i*n+j] = float32((float64(a.Data[i*n+j]) - s) / float64(l.Data[j*n+j]))
			}
		}
	}
	return l, nil
}

// CholeskySolve solves a·X = B for X given the Cholesky factor L of a,
// where B is [n, m]. It performs the forward substitution L·Y = B followed
// by the back substitution Lᵀ·X = Y, column by column.
func CholeskySolve(l, b *Tensor) *Tensor {
	n := l.Dim(0)
	if b.Rank() != 2 || b.Dim(0) != n {
		panic(fmt.Sprintf("tensor.CholeskySolve: factor %v incompatible with rhs %v", l.shape, b.shape))
	}
	m := b.Dim(1)
	x := b.Clone()
	// Forward: L·Y = B.
	for i := 0; i < n; i++ {
		li := l.Data[i*n : (i+1)*n]
		for c := 0; c < m; c++ {
			s := float64(x.Data[i*m+c])
			for k := 0; k < i; k++ {
				s -= float64(li[k]) * float64(x.Data[k*m+c])
			}
			x.Data[i*m+c] = float32(s / float64(li[i]))
		}
	}
	// Backward: Lᵀ·X = Y.
	for i := n - 1; i >= 0; i-- {
		for c := 0; c < m; c++ {
			s := float64(x.Data[i*m+c])
			for k := i + 1; k < n; k++ {
				s -= float64(l.Data[k*n+i]) * float64(x.Data[k*m+c])
			}
			x.Data[i*m+c] = float32(s / float64(l.Data[i*n+i]))
		}
	}
	return x
}

// SolveSPD solves a·X = B for a symmetric positive-definite a via Cholesky
// factorization. This is the solver ESZSL's closed form needs; it returns
// an error when a is singular or indefinite so callers can increase the
// ridge term instead of silently producing garbage.
func SolveSPD(a, b *Tensor) (*Tensor, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b), nil
}

// SolveLinear solves the general square system a·x = b using Gaussian
// elimination with partial pivoting, where b is [n, m]. It returns an
// error for (numerically) singular systems.
func SolveLinear(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || a.Dim(0) != a.Dim(1) {
		panic(fmt.Sprintf("tensor.SolveLinear: want square matrix, have %v", a.shape))
	}
	n := a.Dim(0)
	if b.Rank() != 2 || b.Dim(0) != n {
		panic(fmt.Sprintf("tensor.SolveLinear: matrix %v incompatible with rhs %v", a.shape, b.shape))
	}
	m := b.Dim(1)
	// Work in float64 for stability: the ESZSL normal equations can be
	// poorly conditioned when the feature Gram matrix has small eigenvalues.
	aw := make([]float64, n*n)
	for i, v := range a.Data {
		aw[i] = float64(v)
	}
	bw := make([]float64, n*m)
	for i, v := range b.Data {
		bw[i] = float64(v)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pmax := col, math.Abs(aw[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aw[r*n+col]); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax < 1e-12 {
			return nil, fmt.Errorf("tensor.SolveLinear: singular matrix at column %d", col)
		}
		if piv != col {
			for c := 0; c < n; c++ {
				aw[col*n+c], aw[piv*n+c] = aw[piv*n+c], aw[col*n+c]
			}
			for c := 0; c < m; c++ {
				bw[col*m+c], bw[piv*m+c] = bw[piv*m+c], bw[col*m+c]
			}
		}
		inv := 1 / aw[col*n+col]
		for r := col + 1; r < n; r++ {
			f := aw[r*n+col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				aw[r*n+c] -= f * aw[col*n+c]
			}
			for c := 0; c < m; c++ {
				bw[r*m+c] -= f * bw[col*m+c]
			}
		}
	}
	// Back substitution.
	x := New(n, m)
	for r := n - 1; r >= 0; r-- {
		for c := 0; c < m; c++ {
			s := bw[r*m+c]
			for k := r + 1; k < n; k++ {
				s -= aw[r*n+k] * float64(x.Data[k*m+c])
			}
			x.Data[r*m+c] = float32(s / aw[r*n+r])
		}
	}
	return x, nil
}

// FrobeniusNorm returns the Frobenius norm of a matrix (the L2 norm of its
// elements); ESZSL's regularizer is expressed in terms of it.
func FrobeniusNorm(a *Tensor) float32 { return a.Norm() }
