package tensor

import "fmt"

// blockSize is the cache-blocking tile edge used by the retained
// reference kernel matmulRefInto.
const blockSize = 64

// MatMul computes the 2-D matrix product a[m,k] × b[k,n] → [m,n] via the
// packed register-blocked GEMM (see pack.go).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor.MatMul: want rank-2 operands, have %v and %v", a.shape, b.shape))
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor.MatMul: inner dimensions differ: %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	gemm(out.Data, a.Data, b.Data, m, k, n, GemmOpts{})
	return out
}

// matmulRefInto is the pre-packing kernel — a blocked i-k-j loop with a
// zero-skip branch — retained as the reference the packed GEMM's parity
// tests compare against (the two accumulate in different orders, so the
// comparison is tolerance-based). dst must be pre-zeroed; it accumulates.
func matmulRefInto(dst, a, b []float32, m, k, n int) {
	for i0 := 0; i0 < m; i0 += blockSize {
		iMax := min(i0+blockSize, m)
		for k0 := 0; k0 < k; k0 += blockSize {
			kMax := min(k0+blockSize, k)
			for i := i0; i < iMax; i++ {
				di := dst[i*n : (i+1)*n]
				ai := a[i*k : (i+1)*k]
				for p := k0; p < kMax; p++ {
					av := ai[p]
					if av == 0 {
						continue
					}
					bp := b[p*n : (p+1)*n]
					for j := range di {
						di[j] += av * bp[j]
					}
				}
			}
		}
	}
}

// MatMulInto computes a[m,k] × b[k,n] into dst[m,n] without allocating,
// overwriting dst's contents. dst must not alias a or b. The result is
// bitwise identical to MatMul (same packed kernel); this is the
// non-allocating variant hot paths use with arena- or pool-backed
// destinations.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k, n := checkMatMulShapes("MatMulInto", dst, a, b)
	gemm(dst.Data, a.Data, b.Data, m, k, n, GemmOpts{})
	return dst
}

// checkMatMulShapes validates dst[m,n] = a[m,k] × b[k,n] and returns the
// dimensions; shared by the Into variants.
func checkMatMulShapes(op string, dst, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor.%s: want rank-2 operands, have dst %v, %v × %v",
			op, dst.shape, a.shape, b.shape))
	}
	m, k = a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor.%s: inner dimensions differ: %v × %v", op, a.shape, b.shape))
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor.%s: dst shape %v, want [%d %d]", op, dst.shape, m, n))
	}
	return m, k, n
}

// MatMulT computes a[m,k] × bᵀ where b is [n,k], i.e. the product against
// the transpose without materializing it. This is the natural layout for
// cosine-similarity kernels (rows of b are class/attribute embeddings) and
// for the backward pass of Linear layers.
func MatMulT(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor.MatMulT: want rank-2 operands, have %v and %v", a.shape, b.shape))
	}
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor.MatMulT: inner dimensions differ: %v × %vᵀ", a.shape, b.shape))
	}
	out := New(m, n)
	matmulTRows(out.Data, a.Data, b.Data, 0, m, k, n)
	return out
}

// MatMulTInto computes a[m,k] × bᵀ (b is [n,k]) into dst[m,n] without
// allocating, overwriting dst's contents. dst must not alias a or b.
// Bitwise identical to MatMulT.
func MatMulTInto(dst, a, b *Tensor) *Tensor {
	m, k, n := checkMatMulTShapes("MatMulTInto", dst, a, b)
	matmulTRows(dst.Data, a.Data, b.Data, 0, m, k, n)
	return dst
}

// checkMatMulTShapes validates dst[m,n] = a[m,k] × bᵀ (b is [n,k]) and
// returns the dimensions; shared by the transpose Into variants.
func checkMatMulTShapes(op string, dst, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor.%s: want rank-2 operands, have dst %v, %v × %vᵀ",
			op, dst.shape, a.shape, b.shape))
	}
	m, k = a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor.%s: inner dimensions differ: %v × %vᵀ", op, a.shape, b.shape))
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor.%s: dst shape %v, want [%d %d]", op, dst.shape, m, n))
	}
	return m, k, n
}

// matmulTRows computes rows [lo, hi) of dst = a × bᵀ; the row-range form
// both Into variants and the parallel driver share.
func matmulTRows(dst, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		oi := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var s float32
			for p := range ai {
				s += ai[p] * bj[p]
			}
			oi[j] = s
		}
	}
}

// TMatMul computes aᵀ × b where a is [k,m] and b is [k,n] → [m,n], i.e.
// the product of the transpose of a against b without materializing aᵀ.
// This is the weight-gradient shape in Linear backward (xᵀ·dy).
func TMatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor.TMatMul: want rank-2 operands, have %v and %v", a.shape, b.shape))
	}
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor.TMatMul: leading dimensions differ: %vᵀ × %v", a.shape, b.shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := ap[i]
			if av == 0 {
				continue
			}
			oi := out.Data[i*n : (i+1)*n]
			for j := range bp {
				oi[j] += av * bp[j]
			}
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor.Transpose2D: want rank 2, have %v", a.shape))
	}
	m, n := a.Dim(0), a.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// MatVec computes the matrix-vector product a[m,k] × v[k] → [m].
func MatVec(a, v *Tensor) *Tensor {
	if a.Rank() != 2 || v.Rank() != 1 || a.Dim(1) != v.Dim(0) {
		panic(fmt.Sprintf("tensor.MatVec: shapes %v and %v incompatible", a.shape, v.shape))
	}
	m, k := a.Dim(0), a.Dim(1)
	out := New(m)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		var s float32
		for p := range ai {
			s += ai[p] * v.Data[p]
		}
		out.Data[i] = s
	}
	return out
}

// Dot returns the inner product of two equal-length rank-1 tensors.
func Dot(a, b *Tensor) float32 {
	if a.Rank() != 1 || b.Rank() != 1 || a.Dim(0) != b.Dim(0) {
		panic(fmt.Sprintf("tensor.Dot: shapes %v and %v incompatible", a.shape, b.shape))
	}
	var s float32
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
