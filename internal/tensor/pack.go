package tensor

import (
	"fmt"
	"sync"
)

// Packed, register-blocked GEMM.
//
// This is the repository's one float32 matrix-product kernel: MatMul,
// MatMulInto, PMatMulInto and the nn hot paths (Linear, Conv2D) all land
// here. The design follows the classic BLIS decomposition, scaled to the
// matrix sizes a CPU-served ResNet embedding produces:
//
//   - B is packed into column micro-panels of gemmNR columns × kc rows,
//     A into row micro-panels of gemmMR rows × kc columns, so the inner
//     kernel streams both operands from contiguous memory with no strided
//     access and no data-dependent branches.
//   - The micro-kernel computes one gemmMR×gemmNR output tile with
//     explicit register accumulators; each A value is reused gemmNR
//     times and each B value gemmMR times per load.
//   - The k dimension is blocked in gemmKC slices; a tile's partial sums
//     are accumulated into dst between slices, which fixes the floating-
//     point accumulation order per output element regardless of how the
//     output is partitioned.
//
// Determinism contract: the value of every output element depends only on
// (m, k, n) and the operands — never on the worker count or on which
// column range a worker owns. Parallel callers therefore get bitwise-
// identical results for any worker budget, the invariant the shared-read
// inference path (nn.Infer) and the seeded evaluation pipeline pin in
// tests. The accumulation order differs from the retained reference
// kernel (matmulRefInto), so results are compared against it with a
// tolerance, not bit equality.
//
// Fused epilogue: optional per-row bias (convolution channel bias),
// per-column bias (linear layer bias), an elementwise accumulator add
// (residual shortcut), and a ReLU clamp are applied when a tile's final
// k slice is stored — in that order, each arithmetically identical to a
// separate pass after the full product (every element's complete sum is
// formed first) without re-touching the output matrix from DRAM. On
// AVX2 machines the RowBias/Accum/ReLU epilogue runs inside the
// assembly micro-kernel's store, merging with the partial sums while
// the tile is still in registers; elsewhere (and for edge tiles and
// ColBias) the portable epilogueTile applies the identical arithmetic
// to the just-stored tile, so the two paths are bitwise interchangeable
// within a process.

const (
	// gemmMR × gemmNR is the micro-tile: 6×16 float32 — twelve 8-lane YMM
	// accumulators in the AVX2+FMA kernel (pack_amd64.s), the shape that
	// keeps both FMA ports busy on every AVX2-class core. The portable
	// kernel computes the same tile with scalar arithmetic.
	gemmMR = 6
	gemmNR = 16
	// gemmKC is the k-dimension slice: one A micro-panel (gemmMR·gemmKC ≈
	// 6 KiB) and one B micro-panel (gemmNR·gemmKC = 16 KiB) stay resident
	// in L1 while a tile is computed. It also fixes the accumulation
	// boundaries that make results independent of output partitioning.
	gemmKC = 256
)

// GemmBuf owns the packing workspace (A row panels, B column panels) so
// steady-state GEMM calls allocate nothing. The zero value is ready to
// use; buffers grow on demand and are retained. A GemmBuf is not safe
// for concurrent use — one per goroutine (nn.Scratch embeds one).
type GemmBuf struct {
	a, b []float32
	b8   []uint8 // int8-GEMM activation panels (gemm8)
}

// grow ensures capacity for an A pack of an floats and a B pack of bn
// floats, returning the sized slices.
//hdc:coldpath amortized pack-buffer growth; the steady state reuses capacity
func (g *GemmBuf) grow(an, bn int) (ap, bp []float32) {
	if cap(g.a) < an {
		g.a = make([]float32, an)
	}
	if cap(g.b) < bn {
		g.b = make([]float32, bn)
	}
	return g.a[:an], g.b[:bn]
}

// grow8 ensures capacity for n bytes of int8-GEMM activation panels.
//hdc:coldpath amortized pack-buffer growth; the steady state reuses capacity
func (g *GemmBuf) grow8(n int) []uint8 {
	if cap(g.b8) < n {
		g.b8 = make([]uint8, n)
	}
	return g.b8[:n]
}

// gemmBufPool serves callers that don't thread their own workspace
// (tensor.MatMul, training paths); buffers are reused across calls so the
// steady state allocates nothing.
var gemmBufPool = sync.Pool{New: func() any { return new(GemmBuf) }}

// PackedB is matrix B pre-packed into the GEMM's column-panel layout: all
// k-slices, all column micro-panels, edge panels zero-padded to gemmNR
// columns. Packing is pure data movement, so a GEMM fed a PackedB is
// bitwise identical to one that packs on the fly; it just skips the
// per-call packing pass. Frozen layer weights cache one (see
// nn.Linear.Infer). A PackedB is immutable after PackB and safe for
// concurrent readers.
type PackedB struct {
	k, n, nPad int
	data       []float32
}

// Dims returns the packed matrix's logical dimensions [k, n].
func (pb *PackedB) Dims() (k, n int) { return pb.k, pb.n }

// PackB packs b [k, n] into the GEMM column-panel layout.
func PackB(b *Tensor) *PackedB {
	if b.Rank() != 2 {
		panic(fmt.Sprintf("tensor.PackB: want rank-2 operand, have %v", b.Shape()))
	}
	k, n := b.Dim(0), b.Dim(1)
	nPanels := (n + gemmNR - 1) / gemmNR
	nPad := nPanels * gemmNR
	pb := &PackedB{k: k, n: n, nPad: nPad, data: make([]float32, k*nPad)}
	for pcs := 0; pcs < k; pcs += gemmKC {
		kcb := min(gemmKC, k-pcs)
		packBPanels(pb.data[pcs*nPad:], b.Data, n, kcb, pcs, 0, nPanels, gemmNR*kcb)
	}
	return pb
}

// packBPanels packs column micro-panels [jpLo, jpHi) of B's k-slice
// [pcs, pcs+kcb) into dst. Panel jp occupies dst[jp*panelStride:] as kcb
// steps of gemmNR column values; columns beyond n are zero-padded.
// panelStride must be ≥ gemmNR·kcb; the pooled parallel path passes a
// slice-independent stride so concurrent workers in DIFFERENT k-slices
// (whose kcb differ) still own disjoint buffer regions.
func packBPanels(dst, b []float32, n, kcb, pcs, jpLo, jpHi, panelStride int) {
	for jp := jpLo; jp < jpHi; jp++ {
		j0 := jp * gemmNR
		panel := dst[jp*panelStride : jp*panelStride+gemmNR*kcb]
		w := n - j0
		if w >= gemmNR {
			src := b[pcs*n+j0:]
			for p := 0; p < kcb; p++ {
				copy(panel[p*gemmNR:(p+1)*gemmNR], src[p*n:p*n+gemmNR])
			}
			continue
		}
		src := b[pcs*n+j0:]
		for p := 0; p < kcb; p++ {
			row := src[p*n : p*n+w]
			q := panel[p*gemmNR : (p+1)*gemmNR]
			for c := 0; c < w; c++ {
				q[c] = row[c]
			}
			for c := w; c < gemmNR; c++ {
				q[c] = 0
			}
		}
	}
}

// PackBT packs bᵀ — with b given row-major [n, k] — into the GEMM
// column-panel layout of a [k, n] operand, without materializing the
// transpose. A GEMM fed the result is bitwise identical to one fed
// PackB(Transpose2D(b)): packing is pure data movement either way, only
// the gather order differs. This is the natural form for frozen
// class-memory matrices (rows are class embeddings) consumed as x·ϕᵀ
// similarity products.
func PackBT(b *Tensor) *PackedB {
	if b.Rank() != 2 {
		panic(fmt.Sprintf("tensor.PackBT: want rank-2 operand, have %v", b.Shape()))
	}
	return PackBTRows(b, 0, b.Dim(0))
}

// PackBTRows packs rows [lo, hi) of b [n, k] as the transposed operand
// bᵀ[:, lo:hi] — a [k, hi-lo] packed matrix. Sharded readouts (the
// inference engine's class-range shards) pack exactly the tile they
// own.
func PackBTRows(b *Tensor, lo, hi int) *PackedB {
	if b.Rank() != 2 {
		panic(fmt.Sprintf("tensor.PackBTRows: want rank-2 operand, have %v", b.Shape()))
	}
	if lo < 0 || hi > b.Dim(0) || lo >= hi {
		panic(fmt.Sprintf("tensor.PackBTRows: bad row range [%d,%d) for %d rows", lo, hi, b.Dim(0)))
	}
	k, n := b.Dim(1), hi-lo
	nPanels := (n + gemmNR - 1) / gemmNR
	nPad := nPanels * gemmNR
	pb := &PackedB{k: k, n: n, nPad: nPad, data: make([]float32, k*nPad)}
	for pcs := 0; pcs < k; pcs += gemmKC {
		kcb := min(gemmKC, k-pcs)
		block := pb.data[pcs*nPad:]
		for jp := 0; jp < nPanels; jp++ {
			j0 := jp * gemmNR
			panel := block[jp*gemmNR*kcb : (jp+1)*gemmNR*kcb]
			w := min(gemmNR, n-j0)
			for c := 0; c < w; c++ {
				src := b.Data[(lo+j0+c)*k+pcs:]
				for p := 0; p < kcb; p++ {
					panel[p*gemmNR+c] = src[p]
				}
			}
			for c := w; c < gemmNR; c++ {
				for p := 0; p < kcb; p++ {
					panel[p*gemmNR+c] = 0
				}
			}
		}
	}
	return pb
}

// packAPanels packs every row micro-panel of A's k-slice [pcs, pcs+kcb)
// into dst. Panel ip occupies dst[ip*gemmMR*kcb:] as kcb steps of gemmMR
// row values; rows beyond m are zero-padded.
func packAPanels(dst, a []float32, m, k, kcb, pcs int) {
	mPanels := (m + gemmMR - 1) / gemmMR
	for ip := 0; ip < mPanels; ip++ {
		i0 := ip * gemmMR
		panel := dst[ip*gemmMR*kcb : (ip+1)*gemmMR*kcb]
		h := m - i0
		if h >= gemmMR {
			r0 := a[i0*k+pcs:]
			r1 := a[(i0+1)*k+pcs:]
			r2 := a[(i0+2)*k+pcs:]
			r3 := a[(i0+3)*k+pcs:]
			r4 := a[(i0+4)*k+pcs:]
			r5 := a[(i0+5)*k+pcs:]
			for p := 0; p < kcb; p++ {
				q := panel[p*gemmMR : (p+1)*gemmMR]
				q[0], q[1], q[2] = r0[p], r1[p], r2[p]
				q[3], q[4], q[5] = r3[p], r4[p], r5[p]
			}
			continue
		}
		for p := 0; p < kcb; p++ {
			q := panel[p*gemmMR : (p+1)*gemmMR]
			for r := 0; r < gemmMR; r++ {
				if r < h {
					q[r] = a[(i0+r)*k+pcs+p]
				} else {
					q[r] = 0
				}
			}
		}
	}
}

// microKernelGeneric is the portable micro-kernel: one gemmMR×gemmNR
// tile, d[r][c] (=|+)= Σ_p ap[p·MR+r]·bp[p·NR+c], accumulated in a local
// tile buffer across the k loop. It is the fallback for CPUs without the
// assembly kernel; within one process only ever one kernel runs, so
// results stay bitwise consistent across all call sites and worker
// counts.
func microKernelGeneric(d []float32, ldd int, ap, bp []float32, kc int, first bool) {
	var acc [gemmMR * gemmNR]float32
	ap = ap[: gemmMR*kc : gemmMR*kc]
	bp = bp[: gemmNR*kc : gemmNR*kc]
	for p := 0; p < kc; p++ {
		bs := bp[p*gemmNR : (p+1)*gemmNR]
		as := ap[p*gemmMR : (p+1)*gemmMR]
		for r := 0; r < gemmMR; r++ {
			av := as[r]
			row := acc[r*gemmNR : (r+1)*gemmNR]
			for c := range bs {
				row[c] += av * bs[c]
			}
		}
	}
	for r := 0; r < gemmMR; r++ {
		drow := d[r*ldd : r*ldd+gemmNR]
		arow := acc[r*gemmNR : (r+1)*gemmNR]
		if first {
			copy(drow, arow)
		} else {
			for c := range drow {
				drow[c] += arow[c]
			}
		}
	}
}

// GemmBenchShape is one entry of the canonical GEMM benchmark sweep:
// square sizes plus the conv- and projection-shaped products of the
// micro ResNet embedding path (M=outC, K=inC·kH·kW, N=batch·oh·ow).
type GemmBenchShape struct {
	Name    string
	M, K, N int
}

// GemmBenchShapes is the one definition of the sweep, shared by the
// in-package packed-vs-reference benchmarks and the root BenchmarkGEMM
// that scripts/bench.sh archives — so the archived JSON and the kernel
// comparison can never drift apart.
var GemmBenchShapes = []GemmBenchShape{
	{"sq128", 128, 128, 128},
	{"sq256", 256, 256, 256},
	{"conv3x3-stem", 8, 27, 8192},
	{"conv3x3-mid", 32, 288, 2048},
	{"conv1x1-wide", 128, 32, 2048},
	{"proj-linear", 32, 256, 1536},
}

// GemmOpts configures a GEMM call. The zero value is a serial product
// with no epilogue using pooled workspace.
type GemmOpts struct {
	// Workers is the maximum goroutines the output columns are fanned
	// across (≤1 runs inline). Results are bitwise identical for any
	// value.
	Workers int
	// RowBias, if non-nil (length m), is added to every element of output
	// row i when its final k-slice is stored — the convolution
	// channel-bias epilogue.
	RowBias []float32
	// ColBias, if non-nil (length n), is added to every element of output
	// column j when its final k-slice is stored — the linear-layer bias
	// epilogue.
	ColBias []float32
	// Accum, if non-nil (length ≥ m·n, dst's row-major layout), is added
	// elementwise when a tile's final k-slice is stored — the fused
	// residual-add epilogue of the compiled inference path. It must not
	// alias dst.
	Accum []float32
	// ReLU clamps each output element to max(0, ·) at final-slice store,
	// after every bias/Accum addition — the fused activation epilogue.
	// NaN inputs clamp to 0, matching the eval-mode ReLU layer.
	ReLU bool
	// PB supplies B pre-packed (PackB); the b operand is then ignored and
	// the per-call B packing pass is skipped.
	PB *PackedB
	// Buf supplies the packing workspace; nil uses a pooled one.
	Buf *GemmBuf
}

// hasEpilogue reports whether any fused write-back work is requested.
func (o *GemmOpts) hasEpilogue() bool {
	return o.RowBias != nil || o.ColBias != nil || o.Accum != nil || o.ReLU
}

// GemmInto computes dst[m,n] = a[m,k] × b[k,n] (plus any fused epilogue)
// without allocating in steady state. dst must not alias a or b. With
// o.PB set, b may be nil.
//
//hdc:hotpath
func GemmInto(dst, a, b *Tensor, o GemmOpts) *Tensor {
	if a.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor.GemmInto: want rank-2 operands, have dst %v, a %v", dst.shape, a.shape))
	}
	m, k := a.Dim(0), a.Dim(1)
	var n int
	var bdata []float32
	if o.PB != nil {
		pk, pn := o.PB.Dims()
		if pk != k {
			panic(fmt.Sprintf("tensor.GemmInto: inner dimensions differ: %v × packed[%d %d]", a.shape, pk, pn))
		}
		n = pn
	} else {
		if b.Rank() != 2 {
			panic(fmt.Sprintf("tensor.GemmInto: want rank-2 b, have %v", b.shape))
		}
		if b.Dim(0) != k {
			panic(fmt.Sprintf("tensor.GemmInto: inner dimensions differ: %v × %v", a.shape, b.shape))
		}
		n = b.Dim(1)
		bdata = b.Data
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor.GemmInto: dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	gemm(dst.Data, a.Data, bdata, m, k, n, o)
	return dst
}

// GemmSlices is GemmInto on raw row-major slices: dst[m,n] = a[m,k] ×
// b[k,n] plus any fused epilogue. It exists for hot paths that address
// sub-planes of larger buffers (convolution output planes) without
// wrapping them in tensors.
//
//hdc:hotpath
func GemmSlices(dst, a, b []float32, m, k, n int, o GemmOpts) {
	if len(dst) < m*n || len(a) < m*k || (o.PB == nil && len(b) < k*n) {
		panic("tensor.GemmSlices: operand shorter than its declared shape")
	}
	gemm(dst, a, b, m, k, n, o)
}

// gemm is the packed GEMM driver shared by every matrix-product entry
// point. dst is overwritten (no pre-clearing needed); a zero dimension
// (reachable only via GemmSlices — tensor shapes are strictly positive)
// is a no-op that leaves dst untouched. o is passed by value so the
// serial path never boxes it — the invariant the zero-alloc guards on
// the inference path pin.
func gemm(dst, a, b []float32, m, k, n int, o GemmOpts) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if o.RowBias != nil && len(o.RowBias) < m {
		panic("tensor.gemm: RowBias shorter than m")
	}
	if o.ColBias != nil && len(o.ColBias) < n {
		panic("tensor.gemm: ColBias shorter than n")
	}
	if o.Accum != nil && len(o.Accum) < m*n {
		panic("tensor.gemm: Accum shorter than m·n")
	}
	mPanels := (m + gemmMR - 1) / gemmMR
	nPanels := (n + gemmNR - 1) / gemmNR
	mPad := mPanels * gemmMR
	nPad := nPanels * gemmNR
	if o.PB != nil && o.PB.nPad != nPad {
		panic("tensor.gemm: packed B column count does not match n")
	}

	buf := o.Buf
	if buf == nil {
		buf = gemmBufPool.Get().(*GemmBuf)
		defer gemmBufPool.Put(buf)
	}
	bpackLen := 0
	if o.PB == nil {
		bpackLen = gemmKC * nPad
		if gemmKC > k {
			bpackLen = k * nPad
		}
	}
	apack, bpack := buf.grow(mPad*k, bpackLen)

	// Pack all of A once, serially: one streaming pass, shared read-only
	// by every worker.
	for pcs := 0; pcs < k; pcs += gemmKC {
		kcb := min(gemmKC, k-pcs)
		packAPanels(apack[pcs*mPad:], a, m, k, kcb, pcs)
	}

	workers := o.Workers
	if workers > nPanels {
		workers = nPanels
	}
	if workers <= 1 {
		gemmPanelRange(dst, apack, b, bpack, m, k, n, mPanels, 0, nPanels, o)
		return
	}
	// Contiguous column-panel ranges, one goroutine each: every output
	// element is produced by exactly one worker with the fixed k-slice
	// accumulation order, so the result is bitwise independent of the
	// partition. Workers pack the B panels they consume into disjoint
	// regions of the shared bpack buffer.
	ParallelRows(nPanels, workers, func(jpLo, jpHi int) { //hdc:allow hotpathalloc one closure per multi-worker GEMM call, amortized over the panel work
		gemmPanelRange(dst, apack, b, bpack, m, k, n, mPanels, jpLo, jpHi, o)
	})
}

// gemmPanelRange computes output column panels [jpLo, jpHi): for each
// k-slice it packs (or locates) the B panels, then drives the
// micro-kernel over every row panel × column panel tile, applying the
// fused bias epilogue when a tile's final k-slice is stored.
func gemmPanelRange(dst, apack, b, bpack []float32, m, k, n, mPanels, jpLo, jpHi int, o GemmOpts) {
	mPad := mPanels * gemmMR
	var tmp [gemmMR * gemmNR]float32
	for pcs := 0; pcs < k; pcs += gemmKC {
		kcb := min(gemmKC, k-pcs)
		first := pcs == 0
		last := pcs+kcb == k
		// Panel stride inside the current B block. PackedB stores blocks
		// tightly (stride gemmNR·kcb of each block). The pooled buffer uses
		// the FIRST block's stride for every block: workers run their k-slice
		// loops unsynchronized, so a worker in the (shorter) final slice must
		// still address the exact region it owns in every slice — a
		// kcb-dependent stride would overlap another worker's panels.
		var bblock []float32
		panelStride := gemmNR * kcb
		if o.PB != nil {
			bblock = o.PB.data[pcs*o.PB.nPad:]
		} else {
			bblock = bpack
			panelStride = gemmNR * min(gemmKC, k)
			packBPanels(bblock, b, n, kcb, pcs, jpLo, jpHi, panelStride)
		}
		ablock := apack[pcs*mPad:]
		for jp := jpLo; jp < jpHi; jp++ {
			bp := bblock[jp*panelStride : jp*panelStride+gemmNR*kcb]
			j0 := jp * gemmNR
			nr := min(gemmNR, n-j0)
			for ip := 0; ip < mPanels; ip++ {
				ap := ablock[ip*gemmMR*kcb : (ip+1)*gemmMR*kcb]
				i0 := ip * gemmMR
				mr := min(gemmMR, m-i0)
				if mr == gemmMR && nr == gemmNR {
					if last && o.hasEpilogue() &&
						microKernelEpi(dst[i0*n+j0:], n, ap, bp, kcb, first, o.ReLU, o.RowBias, o.ColBias, o.Accum, i0, j0) {
						// The micro-kernel merged bias/accum/relu into the
						// final store; nothing left to apply for this tile.
						continue
					}
					microKernel(dst[i0*n+j0:], n, ap, bp, kcb, first)
				} else {
					// Edge tile: compute the full padded tile into tmp, then
					// merge only the valid rows/columns. Identical arithmetic
					// to the direct path — tmp holds the same register sums.
					microKernel(tmp[:], gemmNR, ap, bp, kcb, true)
					for r := 0; r < mr; r++ {
						drow := dst[(i0+r)*n+j0 : (i0+r)*n+j0+nr]
						trow := tmp[r*gemmNR:]
						if first {
							for c := 0; c < nr; c++ {
								drow[c] = trow[c]
							}
						} else {
							for c := 0; c < nr; c++ {
								drow[c] += trow[c]
							}
						}
					}
				}
				if last && o.hasEpilogue() {
					epilogueTile(dst, o, i0, j0, mr, nr, n)
				}
			}
		}
	}
}

// epilogueTile applies the fused epilogue to one stored tile: row bias,
// column bias, accumulator add, then the ReLU clamp, each exactly once
// after the element's complete k accumulation — bitwise identical to
// the same sequence of separate passes, and to the in-register epilogue
// of the AVX2 micro-kernel (same additions in the same order; the
// vector max matches the scalar clamp on every input, NaN and signed
// zero included).
//
//hdc:hotpath
func epilogueTile(dst []float32, o GemmOpts, i0, j0, mr, nr, ldd int) {
	for r := 0; r < mr; r++ {
		drow := dst[(i0+r)*ldd+j0 : (i0+r)*ldd+j0+nr]
		if o.RowBias != nil {
			rb := o.RowBias[i0+r]
			for c := range drow {
				drow[c] += rb
			}
		}
		if o.ColBias != nil {
			cb := o.ColBias[j0 : j0+nr]
			for c := range drow {
				drow[c] += cb[c]
			}
		}
		if o.Accum != nil {
			arow := o.Accum[(i0+r)*ldd+j0 : (i0+r)*ldd+j0+nr]
			for c := range drow {
				drow[c] += arow[c]
			}
		}
		if o.ReLU {
			for c := range drow {
				if !(drow[c] > 0) {
					drow[c] = 0
				}
			}
		}
	}
}
