package tensor

import (
	"fmt"
	"math"
)

// Packed int8 GEMM.
//
// This is the integer twin of the f32 packed GEMM (pack.go): the kernel
// the quantized compiled inference plans (nn.CompileQuantized) run every
// convolution and projection on. The product convention is fixed by the
// AVX2 multiply instruction: VPMADDUBSW multiplies an UNSIGNED byte
// operand with a SIGNED one, so
//
//   - the frozen weights are the signed, pre-packed LEFT operand
//     (PackB8), quantized per output channel to [−Gemm8WMax, Gemm8WMax];
//   - the activations are the dynamic RIGHT operand, stored signed int8
//     between plan steps and biased to unsigned (+128) while being
//     packed into column panels. The bias is exact: for output row r the
//     kernel accumulates Σ_k w·(q+128) = Σ_k w·q + 128·Σ_k w, and the
//     second term is the precomputed PackedB8.rowOff[r], subtracted in
//     the epilogue.
//
// Every product is therefore dst[m,n] = w[m,k]·x[k,n]: convolutions are
// already in that form (weights × im2col/CNHW activations), and the
// compiler lowers quantized linear layers the same way by keeping flat
// activations transposed ([d, N] instead of [N, d]).
//
// Weights use the reduced range |q| ≤ Gemm8WMax = 63 so the u8×s8 pair
// sums VPMADDUBSW produces stay within int16: 255·63·2 = 32130 < 32767.
// No intermediate ever saturates, the whole accumulation is EXACT
// integer arithmetic, and the assembly and portable kernels are bitwise
// interchangeable by construction — stronger than the f32 path, where
// only a fixed accumulation order delivers that. The kernel runs the
// full k extent of a tile in registers (integer addition is associative,
// so no k-slicing is needed for partition independence), which also
// means the int32 tile is written exactly once.
//
// The dequantizing epilogue — per-row scale, f32 bias, int8 residual
// accumulate, ReLU, and either an f32 store or a round-to-nearest-even
// requantization to int8 — is shared Go code applied to the kernel's
// int32 tile, so its float arithmetic is identical on every path and
// results stay bitwise deterministic across worker counts and kernels.

const (
	// gemm8MR × gemm8NR is the int8 micro-tile: 4×16 int32 accumulators in
	// 8 YMM registers. Each k step consumes a quad (4 k values): two 32-byte
	// activation loads feed four weight broadcasts, each resolving to
	// VPMADDUBSW + VPMADDWD + VPADDD per 8-column half.
	gemm8MR = 4
	gemm8NR = 16
	// gemm8KQ is the k-quad size: VPMADDUBSW+VPMADDWD reduce 4 adjacent
	// k positions into each int32 lane.
	gemm8KQ = 4

	// Gemm8WMax is the weight quantization ceiling of the int8 kernel:
	// weights must be quantized to [−63, 63] so the unsigned-activation ×
	// signed-weight pair sums never saturate int16 (255·63·2 = 32130).
	// This is the standard reduced-range trick of VPMADDUBSW-based
	// kernels; it costs ~1 bit of weight precision and buys exact,
	// saturation-free integer accumulation.
	Gemm8WMax = 63
	// Gemm8AMax is the activation quantization ceiling (full symmetric
	// int8 range).
	Gemm8AMax = 127
)

// gemm8MaxKQ bounds the reduction depth: each int32 lane accumulates at
// most 4·255·63 = 64260 per quad, so kQ quads stay exact while
// kQ·64260 ≤ MaxInt32.
const gemm8MaxKQ = math.MaxInt32 / (gemm8KQ * 255 * Gemm8WMax)

// PackedB8 is a frozen int8 weight matrix [m, k] pre-packed into the
// int8 kernel's row-panel layout: row panels of gemm8MR rows, k padded
// to whole quads, each quad storing the panel's rows as 4 consecutive
// bytes (one VPBROADCASTD word per row). Resident storage is one byte
// per padded weight — ~4× smaller than the f32 PackedB it replaces.
// Immutable after PackB8 and safe for concurrent readers.
type PackedB8 struct {
	m, k, kQ int
	data     []int8
	// rowOff[r] = 128·Σ_k q[r,k]: the exact correction for the +128
	// unsigned bias the activation pack applies, subtracted from row r's
	// raw accumulators in the epilogue.
	rowOff []int32
}

// Dims returns the packed matrix's logical dimensions [m, k].
func (pw *PackedB8) Dims() (m, k int) { return pw.m, pw.k }

// Bytes returns the resident packed size in bytes.
func (pw *PackedB8) Bytes() int { return len(pw.data) + 4*len(pw.rowOff) }

// PackB8 packs the quantized weight matrix q [m, k] (row-major, values
// in [−Gemm8WMax, Gemm8WMax]) into the int8 GEMM's panel layout.
// Padding rows and padding k positions are zero, which contribute
// nothing to any accumulator or row offset.
func PackB8(q []int8, m, k int) *PackedB8 {
	if m <= 0 || k <= 0 || len(q) < m*k {
		panic(fmt.Sprintf("tensor.PackB8: bad operand: %d×%d over %d values", m, k, len(q)))
	}
	kQ := (k + gemm8KQ - 1) / gemm8KQ
	if kQ > gemm8MaxKQ {
		panic(fmt.Sprintf("tensor.PackB8: k=%d exceeds the exact-accumulation bound (%d)", k, gemm8MaxKQ*gemm8KQ))
	}
	mPanels := (m + gemm8MR - 1) / gemm8MR
	pw := &PackedB8{
		m: m, k: k, kQ: kQ,
		data:   make([]int8, mPanels*kQ*gemm8KQ*gemm8MR),
		rowOff: make([]int32, m),
	}
	for r := 0; r < m; r++ {
		var sum int32
		for _, v := range q[r*k : r*k+k] {
			if v > Gemm8WMax || v < -Gemm8WMax {
				panic(fmt.Sprintf("tensor.PackB8: weight %d outside [−%d, %d]", v, Gemm8WMax, Gemm8WMax))
			}
			sum += int32(v)
		}
		pw.rowOff[r] = 128 * sum
	}
	for ip := 0; ip < mPanels; ip++ {
		panel := pw.data[ip*kQ*gemm8KQ*gemm8MR:]
		for qi := 0; qi < kQ; qi++ {
			for r := 0; r < gemm8MR; r++ {
				row := ip*gemm8MR + r
				dst := panel[(qi*gemm8MR+r)*gemm8KQ : (qi*gemm8MR+r+1)*gemm8KQ]
				if row >= m {
					dst[0], dst[1], dst[2], dst[3] = 0, 0, 0, 0
					continue
				}
				for t := 0; t < gemm8KQ; t++ {
					kk := qi*gemm8KQ + t
					if kk < k {
						dst[t] = q[row*k+kk]
					} else {
						dst[t] = 0
					}
				}
			}
		}
	}
	return pw
}

// Gemm8Opts configures an int8 GEMM call. RowScale is the dequantization
// of the integer product; everything else mirrors the f32 epilogue.
type Gemm8Opts struct {
	// Workers is the goroutine budget the output column panels fan across
	// (≤1 runs inline). Results are bitwise identical for any value: the
	// integer product is exact and the epilogue is per-element.
	Workers int
	// RowScale, if non-nil (length m), scales output row r's dequantized
	// value: v = RowScale[r]·(acc − rowOff[r]). This is the combined
	// weight-row × activation scale. nil means 1.
	RowScale []float32
	// Bias, if non-nil (length m), is the f32 per-row bias added after
	// dequantization (the folded conv channel bias / linear unit bias).
	Bias []float32
	// Accum, if non-nil (length ≥ m·n, dst layout), is an int8 residual
	// input added as AccScale·Accum[i] after the bias — the fused
	// shortcut add of the quantized compiled path.
	Accum []int8
	// AccScale dequantizes Accum.
	AccScale float32
	// ReLU clamps each dequantized value to max(0, ·) before the store.
	ReLU bool
	// InvOutScale requantizes the epilogue value for the int8 output
	// entry point (Gemm8QInto): q = clamp±127(rne(v·InvOutScale)).
	InvOutScale float32
	// Buf supplies the activation packing workspace; nil uses a pooled one.
	Buf *GemmBuf
}

// Gemm8Into computes dst[m,n] = dequant(pw[m,k] · x[k,n]) with the fused
// epilogue, writing float32 — the plan-boundary entry point. x is signed
// int8, row-major [k, n].
//
//hdc:hotpath
func Gemm8Into(dst []float32, pw *PackedB8, x []int8, n int, o Gemm8Opts) {
	if len(dst) < pw.m*n {
		panic("tensor.Gemm8Into: dst shorter than m·n")
	}
	gemm8(dst, nil, pw, x, n, o)
}

// Gemm8QInto is Gemm8Into with the epilogue value requantized to int8
// with o.InvOutScale — the step-to-step entry point that keeps
// activations int8 between plan ops.
//
//hdc:hotpath
func Gemm8QInto(dst []int8, pw *PackedB8, x []int8, n int, o Gemm8Opts) {
	if len(dst) < pw.m*n {
		panic("tensor.Gemm8QInto: dst shorter than m·n")
	}
	gemm8(nil, dst, pw, x, n, o)
}

// gemm8 is the int8 GEMM driver: weights come pre-packed, activations
// are packed per column panel (s8 → u8, +128) into the workspace, and
// each 4×16 tile runs its full k extent in the kernel before the shared
// Go epilogue dequantizes and stores it.
func gemm8(dst32 []float32, dst8 []int8, pw *PackedB8, x []int8, n int, o Gemm8Opts) {
	if n == 0 {
		return
	}
	if len(x) < pw.k*n {
		panic("tensor.gemm8: x shorter than k·n")
	}
	if o.RowScale != nil && len(o.RowScale) < pw.m {
		panic("tensor.gemm8: RowScale shorter than m")
	}
	if o.Bias != nil && len(o.Bias) < pw.m {
		panic("tensor.gemm8: Bias shorter than m")
	}
	if o.Accum != nil && len(o.Accum) < pw.m*n {
		panic("tensor.gemm8: Accum shorter than m·n")
	}
	nPanels := (n + gemm8NR - 1) / gemm8NR
	panelBytes := pw.kQ * gemm8KQ * gemm8NR

	buf := o.Buf
	if buf == nil {
		buf = gemmBufPool.Get().(*GemmBuf)
		defer gemmBufPool.Put(buf)
	}
	bpack := buf.grow8(nPanels * panelBytes)

	workers := o.Workers
	if workers > nPanels {
		workers = nPanels
	}
	if workers <= 1 {
		gemm8PanelRange(dst32, dst8, pw, x, bpack, n, 0, nPanels, o)
		return
	}
	// Contiguous column-panel ranges, one goroutine each. Workers pack
	// the panels they consume into disjoint bpack regions (indexed by
	// absolute panel number), and every output element's integer sum and
	// float epilogue are independent of the partition.
	ParallelRows(nPanels, workers, func(jpLo, jpHi int) { //hdc:allow hotpathalloc one closure per multi-worker GEMM call, amortized over the panel work
		gemm8PanelRange(dst32, dst8, pw, x, bpack, n, jpLo, jpHi, o)
	})
}

// gemm8PanelRange computes output column panels [jpLo, jpHi).
func gemm8PanelRange(dst32 []float32, dst8 []int8, pw *PackedB8, x []int8, bpack []uint8, n, jpLo, jpHi int, o Gemm8Opts) {
	mPanels := (pw.m + gemm8MR - 1) / gemm8MR
	panelBytes := pw.kQ * gemm8KQ * gemm8NR
	var tile [gemm8MR * gemm8NR]int32
	for jp := jpLo; jp < jpHi; jp++ {
		bp := bpack[jp*panelBytes : (jp+1)*panelBytes]
		pack8BPanel(bp, x, pw.k, pw.kQ, n, jp*gemm8NR)
		j0 := jp * gemm8NR
		nr := min(gemm8NR, n-j0)
		for ip := 0; ip < mPanels; ip++ {
			ap := pw.data[ip*pw.kQ*gemm8KQ*gemm8MR:]
			gemm8Kernel(&tile, ap, bp, pw.kQ)
			i0 := ip * gemm8MR
			mr := min(gemm8MR, pw.m-i0)
			gemm8EpilogueTile(&tile, dst32, dst8, pw, o, i0, j0, mr, nr, n)
		}
	}
}

// pack8BPanel packs one activation column panel: quad q of columns
// [j0, j0+16) occupies dst[q·64:], column-major within the quad (4
// consecutive k bytes per column), signed values biased to unsigned by
// +128. Columns beyond n and k positions beyond k pack the bias value
// 128 (q = 0); padded k rows meet zero weights and padded columns are
// never stored, so the padding value is arithmetically irrelevant — it
// is fixed for determinism only.
func pack8BPanel(dst []uint8, x []int8, k, kQ, n, j0 int) {
	w := n - j0
	if w > gemm8NR {
		w = gemm8NR
	}
	qi0 := 0
	if w == gemm8NR {
		qi0 = pack8PanelQuads(dst, x, k, kQ, n, j0)
	}
	for qi := qi0; qi < kQ; qi++ {
		quad := dst[qi*gemm8KQ*gemm8NR:]
		kBase := qi * gemm8KQ
		kFull := kBase+gemm8KQ <= k
		for c := 0; c < w; c++ {
			d := quad[c*gemm8KQ : (c+1)*gemm8KQ]
			src := x[kBase*n+j0+c:]
			if kFull {
				d[0] = uint8(src[0]) + 128
				d[1] = uint8(src[n]) + 128
				d[2] = uint8(src[2*n]) + 128
				d[3] = uint8(src[3*n]) + 128
				continue
			}
			for t := 0; t < gemm8KQ; t++ {
				if kBase+t < k {
					d[t] = uint8(src[t*n]) + 128
				} else {
					d[t] = 128
				}
			}
		}
		for c := w; c < gemm8NR; c++ {
			d := quad[c*gemm8KQ : (c+1)*gemm8KQ]
			d[0], d[1], d[2], d[3] = 128, 128, 128, 128
		}
	}
}

// gemm8KernelGeneric is the portable int8 micro-kernel: one 4×16 int32
// tile, tile[r·16+c] = Σ_quads Σ_t w[r,t]·u[c,t]. All arithmetic is
// exact integer math, so it is bitwise identical to the assembly kernel
// on every input — the property the parity tests pin.
func gemm8KernelGeneric(tile *[gemm8MR * gemm8NR]int32, ap []int8, bp []uint8, kQ int) {
	for i := range tile {
		tile[i] = 0
	}
	for qi := 0; qi < kQ; qi++ {
		aq := ap[qi*gemm8MR*gemm8KQ : (qi+1)*gemm8MR*gemm8KQ]
		bq := bp[qi*gemm8NR*gemm8KQ : (qi+1)*gemm8NR*gemm8KQ]
		for r := 0; r < gemm8MR; r++ {
			w0 := int32(aq[r*gemm8KQ])
			w1 := int32(aq[r*gemm8KQ+1])
			w2 := int32(aq[r*gemm8KQ+2])
			w3 := int32(aq[r*gemm8KQ+3])
			row := tile[r*gemm8NR : (r+1)*gemm8NR]
			for c := 0; c < gemm8NR; c++ {
				u := bq[c*gemm8KQ : (c+1)*gemm8KQ]
				row[c] += w0*int32(u[0]) + w1*int32(u[1]) + w2*int32(u[2]) + w3*int32(u[3])
			}
		}
	}
}

// gemm8EpilogueTile dequantizes and stores one computed tile: subtract
// the row's +128 correction, scale, add the f32 bias, add the scaled
// int8 residual, clamp, then store f32 (dst32) or requantize
// round-to-nearest-even to int8 (dst8). Full-width tiles go through the
// vector epilogue on amd64 (the scalar epilogue otherwise dominates the
// whole GEMM); edge tiles and other architectures take the portable
// per-element path, which is bitwise identical on every finite input.
func gemm8EpilogueTile(tile *[gemm8MR * gemm8NR]int32, dst32 []float32, dst8 []int8, pw *PackedB8, o Gemm8Opts, i0, j0, mr, nr, n int) {
	if nr == gemm8NR && gemm8EpilogueRows(tile, dst32, dst8, pw, o, i0, j0, mr, n) {
		return
	}
	gemm8EpilogueTileGeneric(tile, dst32, dst8, pw, o, i0, j0, mr, nr, n)
}

// gemm8EpilogueTileGeneric is the portable per-element epilogue.
//
//hdc:hotpath
func gemm8EpilogueTileGeneric(tile *[gemm8MR * gemm8NR]int32, dst32 []float32, dst8 []int8, pw *PackedB8, o Gemm8Opts, i0, j0, mr, nr, n int) {
	for r := 0; r < mr; r++ {
		row := tile[r*gemm8NR:]
		off := pw.rowOff[i0+r]
		sc := float32(1)
		if o.RowScale != nil {
			sc = o.RowScale[i0+r]
		}
		var bias float32
		if o.Bias != nil {
			bias = o.Bias[i0+r]
		}
		base := (i0+r)*n + j0
		for c := 0; c < nr; c++ {
			v := float32(row[c]-off)*sc + bias
			if o.Accum != nil {
				v += o.AccScale * float32(o.Accum[base+c])
			}
			if o.ReLU && !(v > 0) {
				v = 0
			}
			if dst32 != nil {
				dst32[base+c] = v
			} else {
				dst8[base+c] = Quant8RNE(v * o.InvOutScale)
			}
		}
	}
}

// Quant8Slice requantizes src into dst: dst[i] = Quant8RNE(src[i]·inv)
// for i < len(dst). The bulk runs through the vector requantization
// tail on amd64; the remainder (and other architectures) use the scalar
// Quant8RNE, which is bitwise identical on finite inputs.
func Quant8Slice(dst []int8, src []float32, inv float32) {
	src = src[:len(dst)]
	for i := quant8SliceVec(dst, src, inv); i < len(dst); i++ {
		dst[i] = Quant8RNE(src[i] * inv)
	}
}

// Quant8RNE rounds v to the nearest integer (ties to even, matching the
// x86 default rounding of VCVTPS2DQ) clamped to the symmetric int8
// range — the one requantization used everywhere in the int8 path.
func Quant8RNE(v float32) int8 {
	r := math.RoundToEven(float64(v))
	if r > Gemm8AMax {
		return Gemm8AMax
	}
	if r < -Gemm8AMax {
		return -Gemm8AMax
	}
	return int8(r)
}
