//go:build amd64 && !noasm

package tensor

// gemm8Kernel4x16 computes one full 4×16 int8 micro-tile into the int32
// tile buffer: tile[r·16+c] = Σ_quads Σ_t ap[quad][r][t]·bp[quad][c][t],
// with ap signed int8 weights (PackB8 layout) and bp unsigned biased
// activations (pack8BPanel layout). Implemented in pack8_amd64.s with
// VPMADDUBSW + VPMADDWD; requires AVX2. The reduced weight range
// (|w| ≤ Gemm8WMax) guarantees the s16 pair sums never saturate, so the
// result is exact integer arithmetic, bitwise identical to
// gemm8KernelGeneric.
//
//go:noescape
func gemm8Kernel4x16(tile *int32, ap *int8, bp *uint8, kq int)

// gemm8Kernel dispatches one int8 micro-tile to the assembly kernel
// when the CPU supports it, else to the portable Go kernel. Both paths
// produce bitwise-identical tiles (exact integer arithmetic), so unlike
// the f32 kernels even cross-kernel comparisons are exact.
func gemm8Kernel(tile *[gemm8MR * gemm8NR]int32, ap []int8, bp []uint8, kq int) {
	if haveGemmAsm {
		gemm8Kernel4x16(&tile[0], &ap[0], &bp[0], kq)
		return
	}
	gemm8KernelGeneric(tile, ap, bp, kq)
}

// pack8Quads16 transposes and biases `quads` full k-quads of a
// full-width activation panel (see pack8_amd64.s). Bitwise identical to
// the scalar packing loop.
//
//go:noescape
func pack8Quads16(dst *uint8, x *int8, n, quads int)

// pack8PanelQuads packs the leading full k-quads of a full-width panel
// with the vector transpose and reports how many quads it covered; the
// caller packs the remainder (k tail, narrow panels, non-AVX2 hosts)
// with the scalar loop.
func pack8PanelQuads(dst []uint8, x []int8, k, kQ, n, j0 int) int {
	if !haveGemmAsm {
		return 0
	}
	qf := k / gemm8KQ
	if qf > kQ {
		qf = kQ
	}
	if qf > 0 {
		pack8Quads16(&dst[0], &x[j0], n, qf)
	}
	return qf
}

//go:noescape
func gather8Stride2(dst *int8, src *int8, rows, cols, dstStride, srcStride int)

// Gather8Stride2 writes dst[r·dstStride+c] = src[r·srcStride+2c] with
// the vector gather when available, reporting whether it ran; callers
// keep a scalar loop for the false case. The 16-byte block loads read
// one byte past the final gathered element, so the dispatch requires
// that byte of slack in src.
func Gather8Stride2(dst, src []int8, rows, cols, dstStride, srcStride int) bool {
	if !haveGemmAsm || rows == 0 || cols == 0 {
		return false
	}
	if (rows-1)*srcStride+2*cols > len(src) {
		return false
	}
	gather8Stride2(&dst[0], &src[0], rows, cols, dstStride, srcStride)
	return true
}

//go:noescape
func quant8Slice16(dst *int8, src *float32, blocks int, inv float32)

// quant8SliceVec requantizes the leading 16-element blocks with the
// vector tail of the int8 epilogue and returns how many elements it
// covered; the caller finishes the remainder with scalar Quant8RNE.
func quant8SliceVec(dst []int8, src []float32, inv float32) int {
	if !haveGemmAsm || len(dst) < 16 {
		return 0
	}
	blocks := len(dst) / 16
	quant8Slice16(&dst[0], &src[0], blocks, inv)
	return blocks * 16
}

// gemm8EpTile16F runs the vector epilogue over the full-width rows of
// one computed tile, storing float32. Bitwise identical to the Go
// epilogue on finite inputs: the dequant multiply and bias add stay
// separate (no FMA contraction) and every conversion rounds to nearest
// even.
//
//go:noescape
func gemm8EpTile16F(dst *float32, tile *int32, rowOff *int32, sc *float32, bias *float32, acc *int8, accScale float32, relu int32, mr, n int)

// gemm8EpTile16Q is the int8-output twin: each epilogue value is
// requantized with invOut and stored as int8, matching Quant8RNE on
// every finite input.
//
//go:noescape
func gemm8EpTile16Q(dst *int8, tile *int32, rowOff *int32, sc *float32, bias *float32, acc *int8, accScale float32, relu int32, mr, n int, invOut float32)

// gemm8EpilogueRows dequantizes and stores one computed full-width tile
// with a single vector-epilogue call that walks the tile's rows in
// assembly. It declines (returns false) without AVX2, sending the
// caller to the portable per-element epilogue; the profile is dominated
// by that path otherwise — the scalar epilogue costs ~3× the integer
// kernel itself.
func gemm8EpilogueRows(tile *[gemm8MR * gemm8NR]int32, dst32 []float32, dst8 []int8, pw *PackedB8, o Gemm8Opts, i0, j0, mr, n int) bool {
	if !haveGemmAsm {
		return false
	}
	relu := int32(0)
	if o.ReLU {
		relu = 1
	}
	base := i0*n + j0
	var sc *float32
	if o.RowScale != nil {
		sc = &o.RowScale[i0]
	}
	var bias *float32
	if o.Bias != nil {
		bias = &o.Bias[i0]
	}
	var acc *int8
	if o.Accum != nil {
		acc = &o.Accum[base]
	}
	if dst32 != nil {
		gemm8EpTile16F(&dst32[base], &tile[0], &pw.rowOff[i0], sc, bias, acc, o.AccScale, relu, mr, n)
	} else {
		gemm8EpTile16Q(&dst8[base], &tile[0], &pw.rowOff[i0], sc, bias, acc, o.AccScale, relu, mr, n, o.InvOutScale)
	}
	return true
}
