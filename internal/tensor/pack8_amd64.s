//go:build amd64 && !noasm

#include "textflag.h"

// func gemm8Kernel4x16(tile *int32, ap *int8, bp *uint8, kq int)
//
// One full 4×16 int8 micro-tile: 8 YMM int32 accumulators (4 rows × two
// 8-column vectors). Per k-quad (4 adjacent k values) the kernel loads
// two 32-byte activation vectors — 16 columns × 4 unsigned bytes each —
// and for each weight row broadcasts its 4 signed bytes (VPBROADCASTD),
// then reduces with VPMADDUBSW (u8×s8 → s16 pair sums; the |w| ≤ 63
// weight range keeps these exact) and VPMADDWD against the all-ones
// word vector (s16 pairs → one s32 per column). The full k extent runs
// in registers: integer addition is exact, so no k-slicing is needed
// and the tile is stored exactly once.
TEXT ·gemm8Kernel4x16(SB), NOSPLIT, $0-32
	MOVQ tile+0(FP), DI
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ kq+24(FP), CX

	// Y7 = sixteen int16(1) lanes for the VPMADDWD pair reduction.
	VPCMPEQW Y7, Y7, Y7
	VPSRLW   $15, Y7, Y7

	VPXOR Y8, Y8, Y8
	VPXOR Y9, Y9, Y9
	VPXOR Y10, Y10, Y10
	VPXOR Y11, Y11, Y11
	VPXOR Y12, Y12, Y12
	VPXOR Y13, Y13, Y13
	VPXOR Y14, Y14, Y14
	VPXOR Y15, Y15, Y15

qloop:
	VMOVDQU (BX), Y0             // columns 0..7, 4 u8 k-values each
	VMOVDQU 32(BX), Y1           // columns 8..15

	VPBROADCASTD (SI), Y2        // weight row 0 quad
	VPMADDUBSW   Y2, Y0, Y3      // u8(acts)×s8(weights) pair sums
	VPMADDWD     Y7, Y3, Y3      // s16 pairs → s32 per column
	VPADDD       Y3, Y8, Y8
	VPMADDUBSW   Y2, Y1, Y4
	VPMADDWD     Y7, Y4, Y4
	VPADDD       Y4, Y9, Y9

	VPBROADCASTD 4(SI), Y2       // weight row 1 quad
	VPMADDUBSW   Y2, Y0, Y3
	VPMADDWD     Y7, Y3, Y3
	VPADDD       Y3, Y10, Y10
	VPMADDUBSW   Y2, Y1, Y4
	VPMADDWD     Y7, Y4, Y4
	VPADDD       Y4, Y11, Y11

	VPBROADCASTD 8(SI), Y2       // weight row 2 quad
	VPMADDUBSW   Y2, Y0, Y3
	VPMADDWD     Y7, Y3, Y3
	VPADDD       Y3, Y12, Y12
	VPMADDUBSW   Y2, Y1, Y4
	VPMADDWD     Y7, Y4, Y4
	VPADDD       Y4, Y13, Y13

	VPBROADCASTD 12(SI), Y2      // weight row 3 quad
	VPMADDUBSW   Y2, Y0, Y3
	VPMADDWD     Y7, Y3, Y3
	VPADDD       Y3, Y14, Y14
	VPMADDUBSW   Y2, Y1, Y4
	VPMADDWD     Y7, Y4, Y4
	VPADDD       Y4, Y15, Y15

	ADDQ $64, BX                 // 16 columns × 4 bytes
	ADDQ $16, SI                 // 4 rows × 4 bytes
	DECQ CX
	JNZ  qloop

	VMOVDQU Y8, (DI)
	VMOVDQU Y9, 32(DI)
	VMOVDQU Y10, 64(DI)
	VMOVDQU Y11, 96(DI)
	VMOVDQU Y12, 128(DI)
	VMOVDQU Y13, 160(DI)
	VMOVDQU Y14, 192(DI)
	VMOVDQU Y15, 224(DI)
	VZEROUPPER
	RET

// func pack8Quads16(dst *uint8, x *int8, n, quads int)
//
// Packs `quads` consecutive full k-quads of one full-width (16-column)
// activation panel: per quad, four source rows of 16 contiguous int8
// values (row stride n) are transposed to column-major quads — exactly
// three levels of byte/word interleaves — and biased to unsigned, which
// for +128 is a XOR with 0x80. Output is 64 contiguous bytes per quad,
// matching pack8BPanel's scalar layout bit for bit.
TEXT ·pack8Quads16(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), BX
	MOVQ quads+24(FP), CX

	LEAQ (BX)(BX*2), R9          // R9 = 3n

	// X7 = 0x80 in every byte: all-ones → VPABSB → 0x01 → <<7 → 0x80.
	VPCMPEQB X7, X7, X7
	VPABSB   X7, X7
	VPSLLW   $7, X7, X7

ploop:
	VMOVDQU (SI), X0             // k row 0
	VMOVDQU (SI)(BX*1), X1       // k row 1
	VMOVDQU (SI)(BX*2), X2       // k row 2
	VMOVDQU (SI)(R9*1), X3       // k row 3

	VPUNPCKLBW X1, X0, X4        // r0[c],r1[c] byte pairs, cols 0..7
	VPUNPCKHBW X1, X0, X5        // cols 8..15
	VPUNPCKLBW X3, X2, X6        // r2[c],r3[c] byte pairs, cols 0..7
	VPUNPCKHBW X3, X2, X1        // cols 8..15

	VPUNPCKLWD X6, X4, X0        // cols 0..3 quads
	VPUNPCKHWD X6, X4, X2        // cols 4..7
	VPUNPCKLWD X1, X5, X3        // cols 8..11
	VPUNPCKHWD X1, X5, X4        // cols 12..15

	VPXOR X7, X0, X0             // signed → biased unsigned (+128)
	VPXOR X7, X2, X2
	VPXOR X7, X3, X3
	VPXOR X7, X4, X4

	VMOVDQU X0, (DI)
	VMOVDQU X2, 16(DI)
	VMOVDQU X3, 32(DI)
	VMOVDQU X4, 48(DI)

	ADDQ $64, DI
	LEAQ (SI)(BX*4), SI          // next quad: 4 k rows down
	DECQ CX
	JNZ  ploop
	RET

// Float clamp bounds of the int8 requantization (±Gemm8AMax). Clamping
// in the float domain BEFORE VCVTPS2DQ keeps overflowing values off the
// converter's integer-indefinite result and lands on the same int8 the
// Go epilogue's round-then-clamp produces (the two orders agree on every
// finite input: both saturate to ±127 beyond ±127.5, and inside the
// range the clamp is a no-op).
DATA q8max<>+0(SB)/4, $0x42fe0000 // 127.0
GLOBL q8max<>(SB), RODATA, $4
DATA q8min<>+0(SB)/4, $0xc2fe0000 // -127.0
GLOBL q8min<>(SB), RODATA, $4
DATA one32<>+0(SB)/4, $0x3f800000 // 1.0, the nil-RowScale identity
GLOBL one32<>(SB), RODATA, $4

// func gemm8EpTile16F(dst *float32, tile *int32, rowOff *int32, sc *float32, bias *float32, acc *int8, accScale float32, relu int32, mr, n int)
//
// Vector epilogue over the full-width rows of one computed tile:
// dst[r][c] = relu(sc[r]·(tile[r][c]−rowOff[r]) + bias[r] + accScale·acc[r][c])
// for r < mr, c < 16, with dst/acc advancing by the logical row stride
// n and sc/bias optional (nil → 1 / 0). The operation order and
// rounding match the portable Go epilogue exactly — subtract the +128
// row correction, convert (RNE), multiply, add (separate VMULPS/VADDPS,
// never FMA), add the scaled int8 residual, then max(v, 0) with +0 as
// the MAXPS second source so −0 and NaN normalize exactly like the Go
// branch.
TEXT ·gemm8EpTile16F(SB), NOSPLIT, $0-72
	MOVQ dst+0(FP), DI
	MOVQ tile+8(FP), SI
	MOVQ rowOff+16(FP), R8
	MOVQ sc+24(FP), R9
	MOVQ bias+32(FP), R10
	MOVQ acc+40(FP), DX
	MOVL relu+52(FP), AX
	MOVQ mr+56(FP), CX
	MOVQ n+64(FP), BX

	VBROADCASTSS accScale+48(FP), Y10
	VBROADCASTSS one32<>(SB), Y14
	VPXOR        Y15, Y15, Y15

frow:
	VMOVDQU      (SI), Y0            // tile row, cols 0..7
	VMOVDQU      32(SI), Y1          // cols 8..15
	VPBROADCASTD (R8), Y2            // +128 row correction
	VPSUBD       Y2, Y0, Y0
	VPSUBD       Y2, Y1, Y1
	VCVTDQ2PS    Y0, Y0
	VCVTDQ2PS    Y1, Y1

	VMOVAPS Y14, Y2                  // row scale (1 when nil)
	TESTQ   R9, R9
	JZ      fscale
	VBROADCASTSS (R9), Y2
	ADDQ         $4, R9

fscale:
	VMULPS Y2, Y0, Y0
	VMULPS Y2, Y1, Y1

	TESTQ R10, R10                   // bias (skip when nil)
	JZ    fnobias
	VBROADCASTSS (R10), Y2
	ADDQ         $4, R10
	VADDPS       Y2, Y0, Y0
	VADDPS       Y2, Y1, Y1

fnobias:
	TESTQ DX, DX                     // int8 residual (skip when nil)
	JZ    fnoacc
	VPMOVSXBD (DX), Y3
	VCVTDQ2PS Y3, Y3
	VMULPS    Y10, Y3, Y3
	VADDPS    Y3, Y0, Y0
	VPMOVSXBD 8(DX), Y3
	VCVTDQ2PS Y3, Y3
	VMULPS    Y10, Y3, Y3
	VADDPS    Y3, Y1, Y1
	LEAQ      (DX)(BX*1), DX

fnoacc:
	TESTL AX, AX
	JZ    fnorelu
	VMAXPS Y15, Y0, Y0
	VMAXPS Y15, Y1, Y1

fnorelu:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	LEAQ    (DI)(BX*4), DI
	ADDQ    $64, SI
	ADDQ    $4, R8
	DECQ    CX
	JNZ     frow
	VZEROUPPER
	RET

// func gemm8EpTile16Q(dst *int8, tile *int32, rowOff *int32, sc *float32, bias *float32, acc *int8, accScale float32, relu int32, mr, n int, invOut float32)
//
// The int8-output twin of gemm8EpTile16F: the epilogue value is scaled
// by invOut, clamped to ±127 in the float domain (keeping overflow off
// VCVTPS2DQ's integer-indefinite result; round-then-clamp and
// clamp-then-round agree on every finite input), converted with
// VCVTPS2DQ (round to nearest even — exactly Quant8RNE) and packed
// 16 int32 → 16 int8. PACKSSDW works per 128-bit lane, so a VPERMQ
// restores column order before the word→byte pack; the float clamp
// keeps every value in ±127, so the packs' saturation never fires.
TEXT ·gemm8EpTile16Q(SB), NOSPLIT, $0-76
	MOVQ dst+0(FP), DI
	MOVQ tile+8(FP), SI
	MOVQ rowOff+16(FP), R8
	MOVQ sc+24(FP), R9
	MOVQ bias+32(FP), R10
	MOVQ acc+40(FP), DX
	MOVL relu+52(FP), AX
	MOVQ mr+56(FP), CX
	MOVQ n+64(FP), BX

	VBROADCASTSS accScale+48(FP), Y10
	VBROADCASTSS invOut+72(FP), Y11
	VBROADCASTSS q8max<>(SB), Y12
	VBROADCASTSS q8min<>(SB), Y13
	VBROADCASTSS one32<>(SB), Y14
	VPXOR        Y15, Y15, Y15

qrow:
	VMOVDQU      (SI), Y0            // tile row, cols 0..7
	VMOVDQU      32(SI), Y1          // cols 8..15
	VPBROADCASTD (R8), Y2            // +128 row correction
	VPSUBD       Y2, Y0, Y0
	VPSUBD       Y2, Y1, Y1
	VCVTDQ2PS    Y0, Y0
	VCVTDQ2PS    Y1, Y1

	VMOVAPS Y14, Y2                  // row scale (1 when nil)
	TESTQ   R9, R9
	JZ      qscale
	VBROADCASTSS (R9), Y2
	ADDQ         $4, R9

qscale:
	VMULPS Y2, Y0, Y0
	VMULPS Y2, Y1, Y1

	TESTQ R10, R10                   // bias (skip when nil)
	JZ    qnobias
	VBROADCASTSS (R10), Y2
	ADDQ         $4, R10
	VADDPS       Y2, Y0, Y0
	VADDPS       Y2, Y1, Y1

qnobias:
	TESTQ DX, DX                     // int8 residual (skip when nil)
	JZ    qnoacc
	VPMOVSXBD (DX), Y3
	VCVTDQ2PS Y3, Y3
	VMULPS    Y10, Y3, Y3
	VADDPS    Y3, Y0, Y0
	VPMOVSXBD 8(DX), Y3
	VCVTDQ2PS Y3, Y3
	VMULPS    Y10, Y3, Y3
	VADDPS    Y3, Y1, Y1
	LEAQ      (DX)(BX*1), DX

qnoacc:
	TESTL AX, AX
	JZ    qnorelu
	VMAXPS Y15, Y0, Y0
	VMAXPS Y15, Y1, Y1

qnorelu:
	VMULPS       Y11, Y0, Y0         // requantize to the output scale
	VMULPS       Y11, Y1, Y1
	VMINPS       Y12, Y0, Y0
	VMINPS       Y12, Y1, Y1
	VMAXPS       Y13, Y0, Y0
	VMAXPS       Y13, Y1, Y1
	VCVTPS2DQ    Y0, Y0
	VCVTPS2DQ    Y1, Y1
	VPACKSSDW    Y1, Y0, Y0
	VPERMQ       $0xd8, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPACKSSWB    X1, X0, X0
	VMOVDQU      X0, (DI)
	LEAQ         (DI)(BX*1), DI
	ADDQ         $64, SI
	ADDQ         $4, R8
	DECQ         CX
	JNZ          qrow
	VZEROUPPER
	RET

// func gather8Stride2(dst *int8, src *int8, rows, cols, dstStride, srcStride int)
//
// dst[r·dstStride + c] = src[r·srcStride + 2c] for r < rows, c < cols:
// the stride-2 horizontal patch gather of the quantized convolutions.
// Eight columns at a time: 16 source bytes, mask the odd bytes with the
// 0x00FF word mask, pack words to bytes (values ≤ 255, saturation never
// fires), store 8. The 16-byte load reads one byte past the last
// gathered element, so the Go wrapper only dispatches here when the
// source slice has that byte of slack.
TEXT ·gather8Stride2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ rows+16(FP), CX
	MOVQ cols+24(FP), BX
	MOVQ dstStride+32(FP), R11
	MOVQ srcStride+40(FP), R8

	VPCMPEQW X7, X7, X7          // X7 = 0x00FF word mask
	VPSRLW   $8, X7, X7

grow:
	MOVQ BX, DX                  // columns left in this row
	MOVQ SI, R9                  // source cursor
	MOVQ DI, R10                 // destination cursor

gcol8:
	CMPQ DX, $8
	JL   gcol1
	VMOVDQU   (R9), X0           // 16 source bytes → 8 even bytes
	VPAND     X7, X0, X0
	VPACKUSWB X0, X0, X0
	MOVQ      X0, (R10)
	ADDQ      $16, R9
	ADDQ      $8, R10
	SUBQ      $8, DX
	JMP       gcol8

gcol1:
	TESTQ DX, DX
	JZ    grdone
	MOVB (R9), AX
	MOVB AX, (R10)
	ADDQ $2, R9
	INCQ R10
	DECQ DX
	JMP  gcol1

grdone:
	ADDQ R8, SI
	ADDQ R11, DI
	DECQ CX
	JNZ  grow
	RET

// func quant8Slice16(dst *int8, src *float32, blocks int, inv float32)
//
// dst[i] = Quant8RNE(src[i]·inv) over blocks×16 elements: multiply,
// clamp to ±127 in the float domain, VCVTPS2DQ (round to nearest even)
// and pack 16 int32 → 16 int8 — the same requantization tail as the
// int8 GEMM epilogue, bitwise identical to the scalar Quant8RNE loop on
// finite inputs.
TEXT ·quant8Slice16(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ blocks+16(FP), CX

	VBROADCASTSS inv+24(FP), Y11
	VBROADCASTSS q8max<>(SB), Y12
	VBROADCASTSS q8min<>(SB), Y13

qsloop:
	VMOVUPS      (SI), Y0
	VMOVUPS      32(SI), Y1
	VMULPS       Y11, Y0, Y0
	VMULPS       Y11, Y1, Y1
	VMINPS       Y12, Y0, Y0
	VMINPS       Y12, Y1, Y1
	VMAXPS       Y13, Y0, Y0
	VMAXPS       Y13, Y1, Y1
	VCVTPS2DQ    Y0, Y0
	VCVTPS2DQ    Y1, Y1
	VPACKSSDW    Y1, Y0, Y0
	VPERMQ       $0xd8, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPACKSSWB    X1, X0, X0
	VMOVDQU      X0, (DI)
	ADDQ         $64, SI
	ADDQ         $16, DI
	DECQ         CX
	JNZ          qsloop
	VZEROUPPER
	RET
