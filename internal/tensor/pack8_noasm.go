//go:build !amd64 || noasm

package tensor

// gemm8Kernel runs the portable int8 micro-kernel on non-amd64 targets.
// The arithmetic is exact integer math, so results match the amd64
// assembly kernel bitwise.
func gemm8Kernel(tile *[gemm8MR * gemm8NR]int32, ap []int8, bp []uint8, kq int) {
	gemm8KernelGeneric(tile, ap, bp, kq)
}

// pack8PanelQuads has no vector implementation off amd64; the scalar
// packing loop covers the whole panel.
func pack8PanelQuads(dst []uint8, x []int8, k, kQ, n, j0 int) int {
	return 0
}

// quant8SliceVec has no vector implementation off amd64; Quant8Slice
// runs its scalar loop over the whole slice.
func quant8SliceVec(dst []int8, src []float32, inv float32) int {
	return 0
}

// Gather8Stride2 has no vector implementation off amd64; callers run
// their scalar gather loop.
func Gather8Stride2(dst, src []int8, rows, cols, dstStride, srcStride int) bool {
	return false
}

// gemm8EpilogueRows has no vector implementation off amd64; callers
// fall through to the portable per-element epilogue.
func gemm8EpilogueRows(tile *[gemm8MR * gemm8NR]int32, dst32 []float32, dst8 []int8, pw *PackedB8, o Gemm8Opts, i0, j0, mr, n int) bool {
	return false
}
