package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// gemm8EdgeShapes exercises every remainder case of the int8 kernel:
// m/n not multiples of the 4×16 micro-tile, k not a multiple of the
// 4-wide quad, degenerate m=1 / k=1 / n=1, and conv/projection-shaped
// products from the compiled embedder.
var gemm8EdgeShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{3, 1, 9},
	{1, 300, 1},
	{gemm8MR, 5, gemm8NR},
	{gemm8MR + 1, 4, gemm8NR + 3},
	{gemm8MR - 1, 17, gemm8NR - 1},
	{5, 8, 9},
	{6, 257, 10},
	{13, 515, 21},
	{64, 64, 64},
	{65, 63, 129},
	{32, 288, 130},
	{8, 27, 256},
}

// randW8 fills a weight matrix in the kernel's reduced range.
func randW8(rng *rand.Rand, n int) []int8 {
	q := make([]int8, n)
	for i := range q {
		q[i] = int8(rng.Intn(2*Gemm8WMax+1) - Gemm8WMax)
	}
	return q
}

// randA8 fills an activation matrix over the full symmetric int8 range.
func randA8(rng *rand.Rand, n int) []int8 {
	q := make([]int8, n)
	for i := range q {
		q[i] = int8(rng.Intn(2*Gemm8AMax+1) - Gemm8AMax)
	}
	return q
}

// refGemm8 computes the exact integer product Σ_k w[r,k]·x[k,c] in
// int32 — the value the kernel must recover after its +128 unsigned
// bias and rowOff correction.
func refGemm8(w, x []int8, m, k, n int) []int32 {
	acc := make([]int32, m*n)
	for r := 0; r < m; r++ {
		for kk := 0; kk < k; kk++ {
			wv := int32(w[r*k+kk])
			if wv == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				acc[r*n+c] += wv * int32(x[kk*n+c])
			}
		}
	}
	return acc
}

// refEpilogue8 applies the reference epilogue with the exact float
// expression order of gemm8EpilogueTile, so f32 outputs must match the
// driver BITWISE (the integer product is exact and the float ops are
// identical IEEE operations in the same order).
func refEpilogue8(acc []int32, m, n int, o Gemm8Opts) []float32 {
	out := make([]float32, m*n)
	for r := 0; r < m; r++ {
		sc := float32(1)
		if o.RowScale != nil {
			sc = o.RowScale[r]
		}
		var bias float32
		if o.Bias != nil {
			bias = o.Bias[r]
		}
		for c := 0; c < n; c++ {
			v := float32(acc[r*n+c])*sc + bias
			if o.Accum != nil {
				v += o.AccScale * float32(o.Accum[r*n+c])
			}
			if o.ReLU && !(v > 0) {
				v = 0
			}
			out[r*n+c] = v
		}
	}
	return out
}

// TestGemm8EdgeShapesMatchReference pins Gemm8Into and Gemm8QInto
// against the exact integer oracle on every edge shape, across all
// epilogue combinations (dequant scale, bias, int8 residual accumulate,
// ReLU, int8 requantization). Equality is bitwise: whichever kernel
// (assembly or portable) this machine runs, the integer sums are exact
// and the epilogue is the same shared Go code.
func TestGemm8EdgeShapesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range gemm8EdgeShapes {
		for _, epi := range []struct {
			name                  string
			scale, bias, ac, relu bool
		}{
			{"plain", false, false, false, false},
			{"scale", true, false, false, false},
			{"scale-bias", true, true, false, false},
			{"scale-bias-relu", true, true, false, true},
			{"scale-bias-accum-relu", true, true, true, true},
		} {
			t.Run(fmt.Sprintf("%dx%dx%d/%s", sh.m, sh.k, sh.n, epi.name), func(t *testing.T) {
				w := randW8(rng, sh.m*sh.k)
				x := randA8(rng, sh.k*sh.n)
				pw := PackB8(w, sh.m, sh.k)
				o := Gemm8Opts{InvOutScale: 0.35}
				if epi.scale {
					o.RowScale = make([]float32, sh.m)
					for i := range o.RowScale {
						o.RowScale[i] = 0.001 + rng.Float32()*0.01
					}
				}
				if epi.bias {
					o.Bias = make([]float32, sh.m)
					for i := range o.Bias {
						o.Bias[i] = rng.Float32() - 0.5
					}
				}
				if epi.ac {
					o.Accum = randA8(rng, sh.m*sh.n)
					o.AccScale = 0.02
				}
				o.ReLU = epi.relu

				want := refEpilogue8(refGemm8(w, x, sh.m, sh.k, sh.n), sh.m, sh.n, o)

				got := make([]float32, sh.m*sh.n)
				for i := range got {
					got[i] = 42 // stale contents must be overwritten
				}
				Gemm8Into(got, pw, x, sh.n, o)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("f32 out[%d] = %v, want %v", i, got[i], want[i])
					}
				}

				got8 := make([]int8, sh.m*sh.n)
				Gemm8QInto(got8, pw, x, sh.n, o)
				for i := range want {
					if q := Quant8RNE(want[i] * o.InvOutScale); got8[i] != q {
						t.Fatalf("int8 out[%d] = %d, want %d", i, got8[i], q)
					}
				}
			})
		}
	}
}

// TestGemm8KernelAsmPortableParity drives the dispatched kernel and the
// portable kernel over identical packed panels and requires bitwise
// equality — on amd64 with AVX2 this pins the assembly kernel against
// the Go reference on every lane.
func TestGemm8KernelAsmPortableParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, kq := range []int{1, 2, 3, 7, 64, 333} {
		ap := make([]int8, kq*gemm8KQ*gemm8MR)
		for i := range ap {
			ap[i] = int8(rng.Intn(2*Gemm8WMax+1) - Gemm8WMax)
		}
		bp := make([]uint8, kq*gemm8KQ*gemm8NR)
		for i := range bp {
			bp[i] = uint8(1 + rng.Intn(255)) // the biased range [1, 255]
		}
		var got, want [gemm8MR * gemm8NR]int32
		gemm8Kernel(&got, ap, bp, kq)
		gemm8KernelGeneric(&want, ap, bp, kq)
		if got != want {
			t.Fatalf("kq=%d: dispatched kernel diverges from portable kernel:\n got %v\nwant %v", kq, got, want)
		}
	}
}

// TestGemm8BitwiseAcrossWorkers pins the determinism contract of the
// int8 driver: any worker budget yields bitwise-identical f32 and int8
// outputs.
func TestGemm8BitwiseAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const m, k, n = 37, 291, 203
	w := randW8(rng, m*k)
	x := randA8(rng, k*n)
	pw := PackB8(w, m, k)
	o := Gemm8Opts{
		RowScale:    make([]float32, m),
		Bias:        make([]float32, m),
		Accum:       randA8(rng, m*n),
		AccScale:    0.015,
		ReLU:        true,
		InvOutScale: 9.7,
	}
	for i := 0; i < m; i++ {
		o.RowScale[i] = 0.002 + rng.Float32()*0.003
		o.Bias[i] = rng.Float32() - 0.5
	}
	base := make([]float32, m*n)
	base8 := make([]int8, m*n)
	o.Workers = 1
	Gemm8Into(base, pw, x, n, o)
	Gemm8QInto(base8, pw, x, n, o)
	for _, workers := range []int{2, 3, 5, 8, 16} {
		o.Workers = workers
		got := make([]float32, m*n)
		got8 := make([]int8, m*n)
		Gemm8Into(got, pw, x, n, o)
		Gemm8QInto(got8, pw, x, n, o)
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("workers=%d: f32 out[%d] = %v, serial %v", workers, i, got[i], base[i])
			}
			if base8[i] != got8[i] {
				t.Fatalf("workers=%d: int8 out[%d] = %d, serial %d", workers, i, got8[i], base8[i])
			}
		}
	}
}

// TestPackB8RejectsOutOfRange pins the reduced weight range: a weight
// outside [−Gemm8WMax, Gemm8WMax] would let the s16 pair sums saturate,
// silently breaking exactness, so PackB8 must refuse it.
func TestPackB8RejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackB8 accepted a weight outside the exact range")
		}
	}()
	PackB8([]int8{64, 0, 0, 0}, 2, 2)
}

// TestPackB8Footprint pins the ~4× storage win over the f32 packed
// panels for a projection-shaped weight matrix.
func TestPackB8Footprint(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const m, k = 1536, 256
	pw := PackB8(randW8(rng, m*k), m, k)
	f32Bytes := 4 * m * k
	if pw.Bytes() > f32Bytes/3 {
		t.Fatalf("packed int8 weights are %d bytes, want ≤ a third of the %d-byte f32 panels", pw.Bytes(), f32Bytes)
	}
}

// BenchmarkGemm8 runs the canonical GEMM sweep through the int8 kernel
// for side-by-side comparison with BenchmarkGEMM's f32 numbers.
func BenchmarkGemm8(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	for _, sh := range GemmBenchShapes {
		b.Run(sh.Name, func(b *testing.B) {
			w := randW8(rng, sh.M*sh.K)
			x := randA8(rng, sh.K*sh.N)
			pw := PackB8(w, sh.M, sh.K)
			scales := make([]float32, sh.M)
			for i := range scales {
				scales[i] = 0.003
			}
			dst := make([]int8, sh.M*sh.N)
			var buf GemmBuf
			o := Gemm8Opts{RowScale: scales, InvOutScale: 21, ReLU: true, Buf: &buf}
			b.SetBytes(int64(sh.M*sh.K + sh.K*sh.N + sh.M*sh.N))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Gemm8QInto(dst, pw, x, sh.N, o)
			}
		})
	}
}
