//go:build amd64 && !noasm

package tensor

// AVX2+FMA micro-kernel plumbing. The assembly kernel (pack_amd64.s)
// computes the full 6×16 tile with 12 YMM accumulators — two 8-lane FMAs
// per A broadcast — which is the shape that saturates the two FMA ports
// on every AVX2-class x86 core. Feature detection runs once at init; on
// CPUs without AVX2/FMA (or kernels without YMM state enabled) the
// portable Go kernel takes over. Kernel choice is fixed per process, so
// the determinism contract (bitwise-identical results across worker
// counts and call sites) holds on every machine; results may differ
// across machines with different kernels, which is why cross-kernel
// comparisons are tolerance-based.

// gemmKernel6x16 computes one 6×16 tile from packed panels:
// d[r*ldd+c] (=|+)= Σ_p ap[p*6+r]·bp[p*16+c]. Implemented in
// pack_amd64.s; requires AVX2+FMA.
//
//go:noescape
func gemmKernel6x16(d *float32, ldd int, ap, bp *float32, kc int, first bool)

// epiFlags bits for gemmKernel6x16Epi.
const (
	epiFirst = 1 << 0 // overwrite dst (no merge of earlier k-slices)
	epiReLU  = 1 << 1 // clamp each element to max(0, ·) before the store
)

// gemmKernel6x16Epi is gemmKernel6x16 with the fused write-back
// epilogue of a tile's FINAL k-slice: the tile's partial sums are
// merged with dst (unless epiFirst), then the per-row bias broadcast,
// the accumulator tile (same ldd as d), and the ReLU clamp are applied
// in registers before the single store — the output matrix is written
// exactly once and never re-read. rowBias and accum may be nil.
// Implemented in pack_amd64.s; requires AVX2+FMA.
//
//go:noescape
func gemmKernel6x16Epi(d *float32, ldd int, ap, bp *float32, kc int, flags int, rowBias, accum *float32)

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE).
func xgetbv() (eax, edx uint32)

// haveGemmAsm reports whether the assembly micro-kernel is usable on
// this CPU: AVX2 + FMA present and the OS has enabled YMM state.
var haveGemmAsm = func() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
	)
	if c1&fma == 0 || c1&osxsave == 0 {
		return false
	}
	if xa, _ := xgetbv(); xa&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}()

// microKernel dispatches one micro-tile to the assembly kernel when the
// CPU supports it, else to the portable Go kernel.
func microKernel(d []float32, ldd int, ap, bp []float32, kc int, first bool) {
	if haveGemmAsm {
		gemmKernel6x16(&d[0], ldd, &ap[0], &bp[0], kc, first)
		return
	}
	microKernelGeneric(d, ldd, ap, bp, kc, first)
}

// microKernelEpi computes a full tile's final k-slice with the
// bias/accum/relu epilogue fused into the assembly kernel's store,
// reporting whether it ran. It declines (driver falls back to
// microKernel + epilogueTile, identical arithmetic) when the assembly
// kernel is unavailable or a column bias is requested — the column
// vector epilogue is not worth the extra kernel variant, since the
// linear-layer path that uses it is one GEMM per call, not one per
// conv plane.
func microKernelEpi(d []float32, ldd int, ap, bp []float32, kc int, first, relu bool, rowBias, colBias, accum []float32, i0, j0 int) bool {
	if !haveGemmAsm || colBias != nil {
		return false
	}
	flags := 0
	if first {
		flags |= epiFirst
	}
	if relu {
		flags |= epiReLU
	}
	var rb, ac *float32
	if rowBias != nil {
		rb = &rowBias[i0]
	}
	if accum != nil {
		ac = &accum[i0*ldd+j0]
	}
	gemmKernel6x16Epi(&d[0], ldd, &ap[0], &bp[0], kc, flags, rb, ac)
	return true
}
