//go:build amd64

#include "textflag.h"

// func gemmKernel6x16(d *float32, ldd int, ap, bp *float32, kc int, first bool)
//
// One 6×16 GEMM micro-tile: 12 YMM accumulators (6 rows × two 8-lane
// vectors), two B vector loads and six A broadcasts per k step, each
// feeding two VFMADD231PS. first selects overwrite vs accumulate at the
// store. ldd is in float32 elements.
TEXT ·gemmKernel6x16(SB), NOSPLIT, $0-41
	MOVQ d+0(FP), DI
	MOVQ ldd+8(FP), SI
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), CX

	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	VXORPS Y12, Y12, Y12
	VXORPS Y13, Y13, Y13
	VXORPS Y14, Y14, Y14
	VXORPS Y15, Y15, Y15

kloop:
	VMOVUPS (BX), Y0             // b[0:8]
	VMOVUPS 32(BX), Y1           // b[8:16]

	VBROADCASTSS (AX), Y2        // a row 0
	VFMADD231PS  Y0, Y2, Y4
	VFMADD231PS  Y1, Y2, Y5
	VBROADCASTSS 4(AX), Y3       // a row 1
	VFMADD231PS  Y0, Y3, Y6
	VFMADD231PS  Y1, Y3, Y7
	VBROADCASTSS 8(AX), Y2       // a row 2
	VFMADD231PS  Y0, Y2, Y8
	VFMADD231PS  Y1, Y2, Y9
	VBROADCASTSS 12(AX), Y3      // a row 3
	VFMADD231PS  Y0, Y3, Y10
	VFMADD231PS  Y1, Y3, Y11
	VBROADCASTSS 16(AX), Y2      // a row 4
	VFMADD231PS  Y0, Y2, Y12
	VFMADD231PS  Y1, Y2, Y13
	VBROADCASTSS 20(AX), Y3      // a row 5
	VFMADD231PS  Y0, Y3, Y14
	VFMADD231PS  Y1, Y3, Y15

	ADDQ $24, AX                 // 6 floats
	ADDQ $64, BX                 // 16 floats
	DECQ CX
	JNZ  kloop

	SHLQ $2, SI                  // row stride in bytes
	MOVBLZX first+40(FP), DX
	TESTL DX, DX
	JZ    accumulate

	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	ADDQ    SI, DI
	VMOVUPS Y6, (DI)
	VMOVUPS Y7, 32(DI)
	ADDQ    SI, DI
	VMOVUPS Y8, (DI)
	VMOVUPS Y9, 32(DI)
	ADDQ    SI, DI
	VMOVUPS Y10, (DI)
	VMOVUPS Y11, 32(DI)
	ADDQ    SI, DI
	VMOVUPS Y12, (DI)
	VMOVUPS Y13, 32(DI)
	ADDQ    SI, DI
	VMOVUPS Y14, (DI)
	VMOVUPS Y15, 32(DI)
	VZEROUPPER
	RET

accumulate:
	VADDPS (DI), Y4, Y4
	VMOVUPS Y4, (DI)
	VADDPS 32(DI), Y5, Y5
	VMOVUPS Y5, 32(DI)
	ADDQ   SI, DI
	VADDPS (DI), Y6, Y6
	VMOVUPS Y6, (DI)
	VADDPS 32(DI), Y7, Y7
	VMOVUPS Y7, 32(DI)
	ADDQ   SI, DI
	VADDPS (DI), Y8, Y8
	VMOVUPS Y8, (DI)
	VADDPS 32(DI), Y9, Y9
	VMOVUPS Y9, 32(DI)
	ADDQ   SI, DI
	VADDPS (DI), Y10, Y10
	VMOVUPS Y10, (DI)
	VADDPS 32(DI), Y11, Y11
	VMOVUPS Y11, 32(DI)
	ADDQ   SI, DI
	VADDPS (DI), Y12, Y12
	VMOVUPS Y12, (DI)
	VADDPS 32(DI), Y13, Y13
	VMOVUPS Y13, 32(DI)
	ADDQ   SI, DI
	VADDPS (DI), Y14, Y14
	VMOVUPS Y14, (DI)
	VADDPS 32(DI), Y15, Y15
	VMOVUPS Y15, 32(DI)
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
