//go:build amd64 && !noasm

#include "textflag.h"

// func gemmKernel6x16(d *float32, ldd int, ap, bp *float32, kc int, first bool)
//
// One 6×16 GEMM micro-tile: 12 YMM accumulators (6 rows × two 8-lane
// vectors), two B vector loads and six A broadcasts per k step, each
// feeding two VFMADD231PS. first selects overwrite vs accumulate at the
// store. ldd is in float32 elements.
TEXT ·gemmKernel6x16(SB), NOSPLIT, $0-41
	MOVQ d+0(FP), DI
	MOVQ ldd+8(FP), SI
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), CX

	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	VXORPS Y12, Y12, Y12
	VXORPS Y13, Y13, Y13
	VXORPS Y14, Y14, Y14
	VXORPS Y15, Y15, Y15

kloop:
	VMOVUPS (BX), Y0             // b[0:8]
	VMOVUPS 32(BX), Y1           // b[8:16]

	VBROADCASTSS (AX), Y2        // a row 0
	VFMADD231PS  Y0, Y2, Y4
	VFMADD231PS  Y1, Y2, Y5
	VBROADCASTSS 4(AX), Y3       // a row 1
	VFMADD231PS  Y0, Y3, Y6
	VFMADD231PS  Y1, Y3, Y7
	VBROADCASTSS 8(AX), Y2       // a row 2
	VFMADD231PS  Y0, Y2, Y8
	VFMADD231PS  Y1, Y2, Y9
	VBROADCASTSS 12(AX), Y3      // a row 3
	VFMADD231PS  Y0, Y3, Y10
	VFMADD231PS  Y1, Y3, Y11
	VBROADCASTSS 16(AX), Y2      // a row 4
	VFMADD231PS  Y0, Y2, Y12
	VFMADD231PS  Y1, Y2, Y13
	VBROADCASTSS 20(AX), Y3      // a row 5
	VFMADD231PS  Y0, Y3, Y14
	VFMADD231PS  Y1, Y3, Y15

	ADDQ $24, AX                 // 6 floats
	ADDQ $64, BX                 // 16 floats
	DECQ CX
	JNZ  kloop

	SHLQ $2, SI                  // row stride in bytes
	MOVBLZX first+40(FP), DX
	TESTL DX, DX
	JZ    accumulate

	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	ADDQ    SI, DI
	VMOVUPS Y6, (DI)
	VMOVUPS Y7, 32(DI)
	ADDQ    SI, DI
	VMOVUPS Y8, (DI)
	VMOVUPS Y9, 32(DI)
	ADDQ    SI, DI
	VMOVUPS Y10, (DI)
	VMOVUPS Y11, 32(DI)
	ADDQ    SI, DI
	VMOVUPS Y12, (DI)
	VMOVUPS Y13, 32(DI)
	ADDQ    SI, DI
	VMOVUPS Y14, (DI)
	VMOVUPS Y15, 32(DI)
	VZEROUPPER
	RET

accumulate:
	VADDPS (DI), Y4, Y4
	VMOVUPS Y4, (DI)
	VADDPS 32(DI), Y5, Y5
	VMOVUPS Y5, 32(DI)
	ADDQ   SI, DI
	VADDPS (DI), Y6, Y6
	VMOVUPS Y6, (DI)
	VADDPS 32(DI), Y7, Y7
	VMOVUPS Y7, 32(DI)
	ADDQ   SI, DI
	VADDPS (DI), Y8, Y8
	VMOVUPS Y8, (DI)
	VADDPS 32(DI), Y9, Y9
	VMOVUPS Y9, 32(DI)
	ADDQ   SI, DI
	VADDPS (DI), Y10, Y10
	VMOVUPS Y10, (DI)
	VADDPS 32(DI), Y11, Y11
	VMOVUPS Y11, 32(DI)
	ADDQ   SI, DI
	VADDPS (DI), Y12, Y12
	VMOVUPS Y12, (DI)
	VADDPS 32(DI), Y13, Y13
	VMOVUPS Y13, 32(DI)
	ADDQ   SI, DI
	VADDPS (DI), Y14, Y14
	VMOVUPS Y14, (DI)
	VADDPS 32(DI), Y15, Y15
	VMOVUPS Y15, 32(DI)
	VZEROUPPER
	RET

// func gemmKernel6x16Epi(d *float32, ldd int, ap, bp *float32, kc int, flags int, rowBias, accum *float32)
//
// gemmKernel6x16 for a tile's FINAL k-slice with the write-back
// epilogue fused into the store: after the k loop the 12 accumulators
// are merged with dst (skipped when flags&1, the overwrite case), then
// per row the broadcast rowBias value and the matching accum row (same
// ldd stride as d) are added and, when flags&2, the lanes are clamped
// with VMAXPS against zero — operand order chosen so NaN and -0 inputs
// clamp to +0 exactly like the scalar epilogue — before the one store.
// rowBias/accum may be NULL. dst is written once and never re-read
// after this call.
TEXT ·gemmKernel6x16Epi(SB), NOSPLIT, $0-64
	MOVQ d+0(FP), DI
	MOVQ ldd+8(FP), SI
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), CX

	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	VXORPS Y12, Y12, Y12
	VXORPS Y13, Y13, Y13
	VXORPS Y14, Y14, Y14
	VXORPS Y15, Y15, Y15

ekloop:
	VMOVUPS (BX), Y0             // b[0:8]
	VMOVUPS 32(BX), Y1           // b[8:16]

	VBROADCASTSS (AX), Y2        // a row 0
	VFMADD231PS  Y0, Y2, Y4
	VFMADD231PS  Y1, Y2, Y5
	VBROADCASTSS 4(AX), Y3       // a row 1
	VFMADD231PS  Y0, Y3, Y6
	VFMADD231PS  Y1, Y3, Y7
	VBROADCASTSS 8(AX), Y2       // a row 2
	VFMADD231PS  Y0, Y2, Y8
	VFMADD231PS  Y1, Y2, Y9
	VBROADCASTSS 12(AX), Y3      // a row 3
	VFMADD231PS  Y0, Y3, Y10
	VFMADD231PS  Y1, Y3, Y11
	VBROADCASTSS 16(AX), Y2      // a row 4
	VFMADD231PS  Y0, Y2, Y12
	VFMADD231PS  Y1, Y2, Y13
	VBROADCASTSS 20(AX), Y3      // a row 5
	VFMADD231PS  Y0, Y3, Y14
	VFMADD231PS  Y1, Y3, Y15

	ADDQ $24, AX                 // 6 floats
	ADDQ $64, BX                 // 16 floats
	DECQ CX
	JNZ  ekloop

	SHLQ  $2, SI                 // row stride in bytes
	MOVQ  flags+40(FP), DX
	MOVQ  rowBias+48(FP), R10
	MOVQ  accum+56(FP), R9
	VXORPS Y1, Y1, Y1            // zero lanes for the ReLU clamp

	// Row 0: Y4/Y5.
	TESTQ $1, DX
	JNZ   emerge0
	VADDPS (DI), Y4, Y4
	VADDPS 32(DI), Y5, Y5
emerge0:
	TESTQ R10, R10
	JZ    ebias0
	VBROADCASTSS (R10), Y0
	VADDPS Y0, Y4, Y4
	VADDPS Y0, Y5, Y5
ebias0:
	TESTQ R9, R9
	JZ    eacc0
	VADDPS (R9), Y4, Y4
	VADDPS 32(R9), Y5, Y5
	ADDQ  SI, R9
eacc0:
	TESTQ $2, DX
	JZ    erelu0
	VMAXPS Y1, Y4, Y4
	VMAXPS Y1, Y5, Y5
erelu0:
	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	ADDQ    SI, DI

	// Row 1: Y6/Y7.
	TESTQ $1, DX
	JNZ   emerge1
	VADDPS (DI), Y6, Y6
	VADDPS 32(DI), Y7, Y7
emerge1:
	TESTQ R10, R10
	JZ    ebias1
	VBROADCASTSS 4(R10), Y0
	VADDPS Y0, Y6, Y6
	VADDPS Y0, Y7, Y7
ebias1:
	TESTQ R9, R9
	JZ    eacc1
	VADDPS (R9), Y6, Y6
	VADDPS 32(R9), Y7, Y7
	ADDQ  SI, R9
eacc1:
	TESTQ $2, DX
	JZ    erelu1
	VMAXPS Y1, Y6, Y6
	VMAXPS Y1, Y7, Y7
erelu1:
	VMOVUPS Y6, (DI)
	VMOVUPS Y7, 32(DI)
	ADDQ    SI, DI

	// Row 2: Y8/Y9.
	TESTQ $1, DX
	JNZ   emerge2
	VADDPS (DI), Y8, Y8
	VADDPS 32(DI), Y9, Y9
emerge2:
	TESTQ R10, R10
	JZ    ebias2
	VBROADCASTSS 8(R10), Y0
	VADDPS Y0, Y8, Y8
	VADDPS Y0, Y9, Y9
ebias2:
	TESTQ R9, R9
	JZ    eacc2
	VADDPS (R9), Y8, Y8
	VADDPS 32(R9), Y9, Y9
	ADDQ  SI, R9
eacc2:
	TESTQ $2, DX
	JZ    erelu2
	VMAXPS Y1, Y8, Y8
	VMAXPS Y1, Y9, Y9
erelu2:
	VMOVUPS Y8, (DI)
	VMOVUPS Y9, 32(DI)
	ADDQ    SI, DI

	// Row 3: Y10/Y11.
	TESTQ $1, DX
	JNZ   emerge3
	VADDPS (DI), Y10, Y10
	VADDPS 32(DI), Y11, Y11
emerge3:
	TESTQ R10, R10
	JZ    ebias3
	VBROADCASTSS 12(R10), Y0
	VADDPS Y0, Y10, Y10
	VADDPS Y0, Y11, Y11
ebias3:
	TESTQ R9, R9
	JZ    eacc3
	VADDPS (R9), Y10, Y10
	VADDPS 32(R9), Y11, Y11
	ADDQ  SI, R9
eacc3:
	TESTQ $2, DX
	JZ    erelu3
	VMAXPS Y1, Y10, Y10
	VMAXPS Y1, Y11, Y11
erelu3:
	VMOVUPS Y10, (DI)
	VMOVUPS Y11, 32(DI)
	ADDQ    SI, DI

	// Row 4: Y12/Y13.
	TESTQ $1, DX
	JNZ   emerge4
	VADDPS (DI), Y12, Y12
	VADDPS 32(DI), Y13, Y13
emerge4:
	TESTQ R10, R10
	JZ    ebias4
	VBROADCASTSS 16(R10), Y0
	VADDPS Y0, Y12, Y12
	VADDPS Y0, Y13, Y13
ebias4:
	TESTQ R9, R9
	JZ    eacc4
	VADDPS (R9), Y12, Y12
	VADDPS 32(R9), Y13, Y13
	ADDQ  SI, R9
eacc4:
	TESTQ $2, DX
	JZ    erelu4
	VMAXPS Y1, Y12, Y12
	VMAXPS Y1, Y13, Y13
erelu4:
	VMOVUPS Y12, (DI)
	VMOVUPS Y13, 32(DI)
	ADDQ    SI, DI

	// Row 5: Y14/Y15.
	TESTQ $1, DX
	JNZ   emerge5
	VADDPS (DI), Y14, Y14
	VADDPS 32(DI), Y15, Y15
emerge5:
	TESTQ R10, R10
	JZ    ebias5
	VBROADCASTSS 20(R10), Y0
	VADDPS Y0, Y14, Y14
	VADDPS Y0, Y15, Y15
ebias5:
	TESTQ R9, R9
	JZ    eacc5
	VADDPS (R9), Y14, Y14
	VADDPS 32(R9), Y15, Y15
eacc5:
	TESTQ $2, DX
	JZ    erelu5
	VMAXPS Y1, Y14, Y14
	VMAXPS Y1, Y15, Y15
erelu5:
	VMOVUPS Y14, (DI)
	VMOVUPS Y15, 32(DI)
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
