//go:build !amd64 || noasm

package tensor

// haveGemmAsm is false off amd64; the portable kernel is used.
const haveGemmAsm = false

// microKernel runs the portable Go micro-kernel on non-amd64 targets.
func microKernel(d []float32, ldd int, ap, bp []float32, kc int, first bool) {
	microKernelGeneric(d, ldd, ap, bp, kc, first)
}

// microKernelEpi reports false off amd64: the driver computes the tile
// with the portable kernel and applies the identical epilogue arithmetic
// via epilogueTile.
func microKernelEpi(d []float32, ldd int, ap, bp []float32, kc int, first, relu bool, rowBias, colBias, accum []float32, i0, j0 int) bool {
	return false
}
