//go:build !amd64

package tensor

// haveGemmAsm is false off amd64; the portable kernel is used.
const haveGemmAsm = false

// microKernel runs the portable Go micro-kernel on non-amd64 targets.
func microKernel(d []float32, ldd int, ap, bp []float32, kc int, first bool) {
	microKernelGeneric(d, ldd, ap, bp, kc, first)
}
