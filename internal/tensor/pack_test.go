package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// refGemm is a float64 oracle for tolerance comparisons: the packed GEMM
// and the retained reference kernel accumulate float32 in different
// orders, so both are checked against the same high-precision product.
func refGemm(a, b *Tensor) []float64 {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := float64(a.Data[i*k+p])
			for j := 0; j < n; j++ {
				out[i*n+j] += av * float64(b.Data[p*n+j])
			}
		}
	}
	return out
}

// gemmEdgeShapes exercises every remainder case of the packed kernel:
// m/n not multiples of the micro-tile, k not a multiple of the k-slice,
// degenerate k=1 / n=1 / m=1, and shapes straddling gemmKC.
var gemmEdgeShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{3, 1, 9},
	{1, 300, 1},
	{gemmMR, 5, gemmNR},
	{gemmMR + 1, 5, gemmNR + 3},
	{gemmMR - 1, 17, gemmNR - 1},
	{5, gemmKC, 9},
	{6, gemmKC + 1, 10},
	{7, gemmKC - 1, 11},
	{13, 2*gemmKC + 3, 21},
	{64, 64, 64},
	{65, 63, 129},
	{32, 288, 130},
}

// TestGEMMEdgeShapesMatchReference pins the packed kernel against the
// float64 oracle and the retained reference kernel on every edge shape.
func TestGEMMEdgeShapesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, sh := range gemmEdgeShapes {
		t.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(t *testing.T) {
			a := Randn(rng, 1, sh.m, sh.k)
			b := Randn(rng, 1, sh.k, sh.n)
			want := refGemm(a, b)

			got := Full(42, sh.m, sh.n) // stale contents must be overwritten
			GemmInto(got, a, b, GemmOpts{})

			ref := New(sh.m, sh.n)
			matmulRefInto(ref.Data, a.Data, b.Data, sh.m, sh.k, sh.n)

			tol := 1e-4 * math.Sqrt(float64(sh.k))
			for i := range want {
				if math.Abs(float64(got.Data[i])-want[i]) > tol {
					t.Fatalf("packed[%d] = %v, oracle %v", i, got.Data[i], want[i])
				}
				if math.Abs(float64(ref.Data[i])-want[i]) > tol {
					t.Fatalf("reference[%d] = %v, oracle %v", i, ref.Data[i], want[i])
				}
			}
		})
	}
}

// TestGEMMBitwiseAcrossWorkers pins the determinism contract: any worker
// budget, with or without a pre-packed B, produces the serial bits.
func TestGEMMBitwiseAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, sh := range gemmEdgeShapes {
		a := Randn(rng, 1, sh.m, sh.k)
		b := Randn(rng, 1, sh.k, sh.n)
		want := New(sh.m, sh.n)
		GemmInto(want, a, b, GemmOpts{})
		pb := PackB(b)
		for _, workers := range []int{0, 1, 2, 3, 7, 64} {
			got := New(sh.m, sh.n)
			GemmInto(got, a, b, GemmOpts{Workers: workers})
			if !bitsEqual(got, want) {
				t.Fatalf("%dx%dx%d workers=%d differs from serial", sh.m, sh.k, sh.n, workers)
			}
			got.Fill(-1)
			GemmInto(got, a, nil, GemmOpts{Workers: workers, PB: pb})
			if !bitsEqual(got, want) {
				t.Fatalf("%dx%dx%d workers=%d with PackedB differs from serial", sh.m, sh.k, sh.n, workers)
			}
		}
	}
}

// TestGEMMFusedBiasMatchesSeparatePass pins the epilogue contract: the
// fused row/column bias is bitwise identical to a separate bias add after
// the full product.
func TestGEMMFusedBiasMatchesSeparatePass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range gemmEdgeShapes {
		a := Randn(rng, 1, sh.m, sh.k)
		b := Randn(rng, 1, sh.k, sh.n)
		rowBias := Randn(rng, 1, sh.m)
		colBias := Randn(rng, 1, sh.n)

		plain := New(sh.m, sh.n)
		GemmInto(plain, a, b, GemmOpts{})

		wantRow := plain.Clone()
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				wantRow.Data[i*sh.n+j] += rowBias.Data[i]
			}
		}
		gotRow := New(sh.m, sh.n)
		GemmInto(gotRow, a, b, GemmOpts{RowBias: rowBias.Data, Workers: 3})
		if !bitsEqual(gotRow, wantRow) {
			t.Fatalf("%dx%dx%d fused row bias differs from separate pass", sh.m, sh.k, sh.n)
		}

		wantCol := plain.Clone()
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				wantCol.Data[i*sh.n+j] += colBias.Data[j]
			}
		}
		gotCol := New(sh.m, sh.n)
		GemmInto(gotCol, a, b, GemmOpts{ColBias: colBias.Data, Workers: 2})
		if !bitsEqual(gotCol, wantCol) {
			t.Fatalf("%dx%dx%d fused col bias differs from separate pass", sh.m, sh.k, sh.n)
		}
	}
}

// TestPackBMatchesOnTheFly pins that a cached PackedB is bit-for-bit the
// panels the on-the-fly path packs (pure data movement, zero padding).
func TestPackBMatchesOnTheFly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := Randn(rng, 1, gemmKC+5, 19)
	pb := PackB(b)
	k, n := b.Dim(0), b.Dim(1)
	nPanels := (n + gemmNR - 1) / gemmNR
	for pcs := 0; pcs < k; pcs += gemmKC {
		kcb := min(gemmKC, k-pcs)
		onTheFly := make([]float32, kcb*nPanels*gemmNR)
		packBPanels(onTheFly, b.Data, n, kcb, pcs, 0, nPanels, gemmNR*kcb)
		cached := pb.data[pcs*pb.nPad : pcs*pb.nPad+len(onTheFly)]
		for i := range onTheFly {
			if math.Float32bits(onTheFly[i]) != math.Float32bits(cached[i]) {
				t.Fatalf("slice %d: packed byte %d differs", pcs, i)
			}
		}
	}
}

// TestGEMMFusedEpilogueMatchesSeparatePasses pins the write-back
// epilogue contract of the frozen-graph compiler: row bias + residual
// accumulator + ReLU fused at final-slice store are bitwise identical
// to the same operations as separate full passes after the product —
// on every edge shape (asm fast path for full tiles, portable
// epilogueTile for edges), at any worker count.
func TestGEMMFusedEpilogueMatchesSeparatePasses(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, sh := range gemmEdgeShapes {
		a := Randn(rng, 1, sh.m, sh.k)
		b := Randn(rng, 1, sh.k, sh.n)
		rowBias := Randn(rng, 1, sh.m)
		accum := Randn(rng, 1, sh.m, sh.n)

		plain := New(sh.m, sh.n)
		GemmInto(plain, a, b, GemmOpts{})

		// Separate passes, in the documented epilogue order.
		want := plain.Clone()
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				v := want.Data[i*sh.n+j] + rowBias.Data[i]
				v += accum.Data[i*sh.n+j]
				if !(v > 0) {
					v = 0
				}
				want.Data[i*sh.n+j] = v
			}
		}
		for _, workers := range []int{1, 3} {
			got := Full(-9, sh.m, sh.n)
			GemmInto(got, a, b, GemmOpts{
				Workers: workers, RowBias: rowBias.Data, Accum: accum.Data, ReLU: true,
			})
			if !bitsEqual(got, want) {
				t.Fatalf("%dx%dx%d workers=%d fused bias+accum+relu differs from separate passes",
					sh.m, sh.k, sh.n, workers)
			}
		}

		// Each feature alone must also match its separate pass.
		wantAcc := plain.Clone()
		for i := range wantAcc.Data {
			wantAcc.Data[i] += accum.Data[i]
		}
		gotAcc := New(sh.m, sh.n)
		GemmInto(gotAcc, a, b, GemmOpts{Accum: accum.Data})
		if !bitsEqual(gotAcc, wantAcc) {
			t.Fatalf("%dx%dx%d fused accum differs from separate add", sh.m, sh.k, sh.n)
		}

		wantRelu := plain.Clone()
		for i, v := range wantRelu.Data {
			if !(v > 0) {
				wantRelu.Data[i] = 0
			}
		}
		gotRelu := New(sh.m, sh.n)
		GemmInto(gotRelu, a, b, GemmOpts{ReLU: true})
		if !bitsEqual(gotRelu, wantRelu) {
			t.Fatalf("%dx%dx%d fused relu differs from separate clamp", sh.m, sh.k, sh.n)
		}
	}
}

// TestGEMMColBiasWithReLU pins the one epilogue combination the asm
// kernel declines (column bias present): the portable path must apply
// bias before the clamp.
func TestGEMMColBiasWithReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	const m, k, n = 13, 40, 37
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	colBias := Randn(rng, 1, n)
	want := New(m, n)
	GemmInto(want, a, b, GemmOpts{ColBias: colBias.Data})
	for i, v := range want.Data {
		if !(v > 0) {
			want.Data[i] = 0
		}
	}
	got := New(m, n)
	GemmInto(got, a, b, GemmOpts{ColBias: colBias.Data, ReLU: true})
	if !bitsEqual(got, want) {
		t.Fatal("fused col bias + relu differs from separate passes")
	}
}

// TestPackBTMatchesTransposedPackB pins that packing bᵀ directly from
// b's rows produces bit-for-bit the panels PackB builds from the
// materialized transpose, for full matrices and row ranges.
func TestPackBTMatchesTransposedPackB(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, sh := range [][2]int{{1, 1}, {5, 3}, {23, 96}, {200, gemmKC + 7}, {33, 64}} {
		rows, k := sh[0], sh[1]
		b := Randn(rng, 1, rows, k)
		bt := Transpose2D(b)
		want := PackB(bt)
		got := PackBT(b)
		if got.k != want.k || got.n != want.n || got.nPad != want.nPad {
			t.Fatalf("%dx%d: dims (%d,%d,%d) vs (%d,%d,%d)", rows, k,
				got.k, got.n, got.nPad, want.k, want.n, want.nPad)
		}
		for i := range want.data {
			if math.Float32bits(got.data[i]) != math.Float32bits(want.data[i]) {
				t.Fatalf("%dx%d: packed element %d differs", rows, k, i)
			}
		}
		if rows > 2 {
			lo, hi := 1, rows-1
			sub := New(hi-lo, k)
			for r := lo; r < hi; r++ {
				copy(sub.Row(r-lo), b.Row(r))
			}
			wantSub := PackB(Transpose2D(sub))
			gotSub := PackBTRows(b, lo, hi)
			for i := range wantSub.data {
				if math.Float32bits(gotSub.data[i]) != math.Float32bits(wantSub.data[i]) {
					t.Fatalf("%dx%d rows [%d,%d): packed element %d differs", rows, k, lo, hi, i)
				}
			}
		}
	}
}

// TestArenaGrabWrap pins the uninitialized-slab contract the compiled
// plan builds on: Grab hands out capacity without clearing it, Wrap
// turns a region into a tensor without copying, and a warm arena serves
// both with zero heap allocations.
func TestArenaGrabWrap(t *testing.T) {
	var a Arena
	s1 := a.Grab(64)
	for i := range s1 {
		s1[i] = float32(i)
	}
	w := a.Wrap(s1[:6], 2, 3)
	if w.Dim(0) != 2 || w.Dim(1) != 3 || &w.Data[0] != &s1[0] {
		t.Fatalf("Wrap: shape %v or data not shared", w.Shape())
	}
	a.Reset()
	s2 := a.Grab(64)
	if &s2[0] != &s1[0] {
		t.Fatal("Grab after Reset did not reuse the slab")
	}
	// Uninitialized by design: prior contents are visible.
	if s2[5] != 5 {
		t.Fatalf("Grab cleared the slab: s2[5] = %v", s2[5])
	}
}

// TestGemmEmptyNoOp pins the degenerate case: a GEMM with any zero
// dimension (only reachable through the raw-slice entry point — tensor
// shapes are strictly positive) is a no-op that touches neither dst nor
// the workspace.
func TestGemmEmptyNoOp(t *testing.T) {
	dst := make([]float32, 16)
	for i := range dst {
		dst[i] = 7
	}
	ops := make([]float32, 16)
	for _, sh := range [][3]int{{0, 4, 4}, {4, 0, 4}, {4, 4, 0}, {0, 0, 0}} {
		GemmSlices(dst, ops, ops, sh[0], sh[1], sh[2], GemmOpts{Workers: 3})
		for _, v := range dst {
			if v != 7 {
				t.Fatalf("empty GEMM %v wrote to dst", sh)
			}
		}
	}
}

// TestGemmSlicesSubPlane pins the raw-slice entry point convolution uses:
// writing one output plane inside a larger buffer.
func TestGemmSlicesSubPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := Randn(rng, 1, 6, 10)
	b := Randn(rng, 1, 10, 15)
	want := New(6, 15)
	GemmInto(want, a, b, GemmOpts{})
	buf := make([]float32, 3*6*15)
	GemmSlices(buf[6*15:2*6*15], a.Data, b.Data, 6, 10, 15, GemmOpts{})
	for i := range want.Data {
		if math.Float32bits(buf[6*15+i]) != math.Float32bits(want.Data[i]) {
			t.Fatal("GemmSlices sub-plane differs from GemmInto")
		}
	}
}

// The benchmarks sweep GemmBenchShapes (pack.go) — the same table the
// root BenchmarkGEMM archives via scripts/bench.sh.

func BenchmarkGEMMPacked(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range GemmBenchShapes {
		b.Run(sh.Name, func(b *testing.B) {
			x := Randn(rng, 1, sh.M, sh.K)
			y := Randn(rng, 1, sh.K, sh.N)
			dst := New(sh.M, sh.N)
			var buf GemmBuf
			b.SetBytes(int64(2 * sh.M * sh.K * sh.N)) // FLOPs as "bytes" → throughput
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				GemmInto(dst, x, y, GemmOpts{Buf: &buf})
			}
		})
	}
}

func BenchmarkGEMMReference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range GemmBenchShapes {
		b.Run(sh.Name, func(b *testing.B) {
			x := Randn(rng, 1, sh.M, sh.K)
			y := Randn(rng, 1, sh.K, sh.N)
			dst := New(sh.M, sh.N)
			b.SetBytes(int64(2 * sh.M * sh.K * sh.N))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clear(dst.Data)
				matmulRefInto(dst.Data, x.Data, y.Data, sh.M, sh.K, sh.N)
			}
		})
	}
}
