package tensor

import "sync"

// Parallel matmul drivers. Work is partitioned over contiguous blocks of
// the output (column panels for the packed GEMM, rows for the transpose
// kernel), one goroutine per block: every output element is produced by
// exactly one worker with the kernel's fixed per-element accumulation
// order, so results are bitwise identical to the single-threaded Into
// variants for ANY worker count. That invariant is what lets the
// shared-read inference path parallelize without perturbing seeded
// evaluation numbers.

// ParallelRows partitions [0, rows) into at most workers near-equal
// contiguous blocks and runs fn(lo, hi) for each block on its own
// goroutine, returning when all blocks are done. workers ≤ 1 (or a
// single row) runs fn inline with no goroutine overhead.
func ParallelRows(rows, workers int, fn func(lo, hi int)) {
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		if rows > 0 {
			fn(0, rows)
		}
		return
	}
	var wg sync.WaitGroup
	base, extra := rows/workers, rows%workers
	lo := 0
	for i := 0; i < workers; i++ {
		w := base
		if i < extra {
			w++
		}
		hi := lo + w
		wg.Add(1)
		go func(lo, hi int) { //hdc:allow hotpathalloc one goroutine per worker is the fan-out design; the single-worker path spawns none
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// PMatMulInto computes a[m,k] × b[k,n] into dst[m,n] like MatMulInto,
// fanning contiguous column-panel blocks of the output across at most
// workers goroutines (the packed GEMM's parallel axis). Bitwise
// identical to MatMulInto for any worker count.
func PMatMulInto(dst, a, b *Tensor, workers int) *Tensor {
	m, k, n := checkMatMulShapes("PMatMulInto", dst, a, b)
	gemm(dst.Data, a.Data, b.Data, m, k, n, GemmOpts{Workers: workers})
	return dst
}

// PMatMulTInto computes a[m,k] × bᵀ (b is [n,k]) into dst[m,n] like
// MatMulTInto, fanning row blocks across at most workers goroutines.
// Bitwise identical to MatMulTInto for any worker count.
func PMatMulTInto(dst, a, b *Tensor, workers int) *Tensor {
	m, k, n := checkMatMulTShapes("PMatMulTInto", dst, a, b)
	ParallelRows(m, workers, func(lo, hi int) {
		matmulTRows(dst.Data, a.Data, b.Data, lo, hi, k, n)
	})
	return dst
}
