package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// bitsEqual reports whether two tensors are bitwise identical (exact
// float32 bit patterns, not just numerically close).
func bitsEqual(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 37, 53)
	b := Randn(rng, 1, 53, 29)
	want := MatMul(a, b)
	dst := Full(99, 37, 29) // stale contents must be overwritten
	MatMulInto(dst, a, b)
	if !bitsEqual(dst, want) {
		t.Fatal("MatMulInto differs from MatMul")
	}
}

func TestMatMulTIntoMatchesMatMulT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 17, 64)
	b := Randn(rng, 1, 23, 64)
	want := MatMulT(a, b)
	dst := Full(-3, 17, 23)
	MatMulTInto(dst, a, b)
	if !bitsEqual(dst, want) {
		t.Fatal("MatMulTInto differs from MatMulT")
	}
}

// TestParallelMatMulBitwiseAcrossWorkers pins the invariant the
// shared-read inference path depends on: the row-tiled parallel drivers
// produce bit-identical results for every worker count, because each
// output row is computed by exactly one worker in serial kernel order.
func TestParallelMatMulBitwiseAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 70, 130) // sizes straddle blockSize boundaries
	b := Randn(rng, 1, 130, 66)
	bt := Transpose2D(b)
	want := MatMul(a, b)
	for _, workers := range []int{0, 1, 2, 3, 7, 70, 1000} {
		dst := New(70, 66)
		PMatMulInto(dst, a, b, workers)
		if !bitsEqual(dst, want) {
			t.Fatalf("PMatMulInto(workers=%d) differs from serial MatMul", workers)
		}
		dstT := New(70, 66)
		PMatMulTInto(dstT, a, bt, workers)
		if !bitsEqual(dstT, MatMulT(a, bt)) {
			t.Fatalf("PMatMulTInto(workers=%d) differs from serial MatMulT", workers)
		}
	}
}

func TestParallelRowsCoversEveryRowOnce(t *testing.T) {
	for _, rows := range []int{0, 1, 2, 5, 64} {
		for _, workers := range []int{1, 2, 3, 64, 100} {
			seen := make([]int32, rows)
			ParallelRows(rows, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					seen[i]++ // blocks are disjoint, so no atomics needed
				}
			})
			for i, n := range seen {
				if n != 1 {
					t.Fatalf("rows=%d workers=%d: row %d covered %d times", rows, workers, i, n)
				}
			}
		}
	}
}

func TestArenaAllocZeroedAndAliasedFree(t *testing.T) {
	var a Arena
	x := a.Alloc(4, 8)
	for i := range x.Data {
		if x.Data[i] != 0 {
			t.Fatal("fresh arena allocation not zeroed")
		}
		x.Data[i] = 7
	}
	y := a.Alloc(4, 8)
	for _, v := range y.Data {
		if v != 0 {
			t.Fatal("second allocation overlaps the first or is not zeroed")
		}
	}
	a.Reset()
	z := a.Alloc(4, 8)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatal("post-Reset allocation sees stale data")
		}
	}
}

func TestArenaCoalescesAfterOverflow(t *testing.T) {
	var a Arena
	// Force several slabs: allocations larger than the minimum slab.
	for i := 0; i < 3; i++ {
		a.Alloc(arenaMinSlab + 1)
	}
	if len(a.slabs) != 3 {
		t.Fatalf("want 3 slabs before Reset, have %d", len(a.slabs))
	}
	total := a.Cap()
	a.Reset()
	if len(a.slabs) != 1 || a.Cap() != total {
		t.Fatalf("Reset should coalesce to one slab of capacity %d, have %d slabs cap %d",
			total, len(a.slabs), a.Cap())
	}
	// The coalesced slab now serves the same workload allocation-free.
	for i := 0; i < 3; i++ {
		a.Alloc(arenaMinSlab + 1)
	}
	if len(a.slabs) != 1 {
		t.Fatalf("coalesced slab should absorb the workload, have %d slabs", len(a.slabs))
	}
}
