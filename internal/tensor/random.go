package tensor

import (
	"math"
	"math/rand"
)

// Randn fills a new tensor of the given shape with samples from
// N(0, stddev²) drawn from rng. All randomness in the repository flows
// through explicit *rand.Rand values so experiments are reproducible.
func Randn(rng *rand.Rand, stddev float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64()) * stddev
	}
	return t
}

// RandUniform fills a new tensor with samples from U[lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.Data {
		t.Data[i] = lo + span*rng.Float32()
	}
	return t
}

// Rademacher fills a new tensor with ±1 entries, each sign chosen with
// probability ½. This is the atomic-hypervector distribution used by the
// HDC attribute encoder (paper §III-A); package hdc has a packed-bit
// variant, this one is for the real-valued training path.
func Rademacher(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		if rng.Int63()&1 == 0 {
			t.Data[i] = 1
		} else {
			t.Data[i] = -1
		}
	}
	return t
}

// HeInit returns Kaiming-He normal initialization for a weight tensor with
// the given fan-in: N(0, sqrt(2/fanIn)). Standard for ReLU networks.
func HeInit(rng *rand.Rand, fanIn int, shape ...int) *Tensor {
	return Randn(rng, float32(math.Sqrt(2/float64(fanIn))), shape...)
}

// XavierInit returns Glorot-uniform initialization for a weight tensor:
// U(-a, a) with a = sqrt(6/(fanIn+fanOut)). Used for linear projections
// feeding non-ReLU activations (e.g. the similarity projection FC).
func XavierInit(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	a := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	return RandUniform(rng, -a, a, shape...)
}
