package tensor

import (
	"fmt"
	"math"
	"sort"
)

// SumRows sums a 2-D tensor along axis 1, returning a rank-1 tensor of
// length rows.
func SumRows(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor.SumRows: want rank 2, have %v", a.shape))
	}
	rows, cols := a.Dim(0), a.Dim(1)
	out := New(rows)
	for r := 0; r < rows; r++ {
		var s float64
		for _, v := range a.Data[r*cols : (r+1)*cols] {
			s += float64(v)
		}
		out.Data[r] = float32(s)
	}
	return out
}

// SumCols sums a 2-D tensor along axis 0, returning a rank-1 tensor of
// length cols. This is the bias-gradient reduction in Linear backward.
func SumCols(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor.SumCols: want rank 2, have %v", a.shape))
	}
	rows, cols := a.Dim(0), a.Dim(1)
	out := New(cols)
	for r := 0; r < rows; r++ {
		row := a.Data[r*cols : (r+1)*cols]
		for c, v := range row {
			out.Data[c] += v
		}
	}
	return out
}

// MeanCols returns the column means of a 2-D tensor.
func MeanCols(a *Tensor) *Tensor {
	out := SumCols(a)
	inv := 1 / float32(a.Dim(0))
	for i := range out.Data {
		out.Data[i] *= inv
	}
	return out
}

// ArgMaxRow returns the index of the maximum element in row r of a 2-D
// tensor; ties resolve to the lowest index.
func ArgMaxRow(a *Tensor, r int) int {
	row := a.Row(r)
	best, bi := row[0], 0
	for i, v := range row[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// ArgMax returns, for each row of a 2-D tensor, the index of its maximum.
func ArgMax(a *Tensor) []int {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor.ArgMax: want rank 2, have %v", a.shape))
	}
	out := make([]int, a.Dim(0))
	for r := range out {
		out[r] = ArgMaxRow(a, r)
	}
	return out
}

// TopKRow returns the indices of the k largest elements in row r of a 2-D
// tensor, in descending order of value. Ties resolve to lower indices.
func TopKRow(a *Tensor, r, k int) []int {
	row := a.Row(r)
	if k > len(row) {
		panic(fmt.Sprintf("tensor.TopKRow: k=%d exceeds row length %d", k, len(row)))
	}
	idx := make([]int, len(row))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return row[idx[i]] > row[idx[j]] })
	return idx[:k]
}

// SoftmaxRows applies a numerically stable softmax to each row of a 2-D
// tensor, returning a new tensor whose rows sum to 1.
func SoftmaxRows(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor.SoftmaxRows: want rank 2, have %v", a.shape))
	}
	rows, cols := a.Dim(0), a.Dim(1)
	out := New(rows, cols)
	for r := 0; r < rows; r++ {
		in := a.Data[r*cols : (r+1)*cols]
		o := out.Data[r*cols : (r+1)*cols]
		mx := in[0]
		for _, v := range in[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for c, v := range in {
			e := math.Exp(float64(v - mx))
			o[c] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for c := range o {
			o[c] *= inv
		}
	}
	return out
}

// LogSumExpRow returns log(Σ exp(row)) for row r, computed stably.
func LogSumExpRow(a *Tensor, r int) float32 {
	row := a.Row(r)
	mx := row[0]
	for _, v := range row[1:] {
		if v > mx {
			mx = v
		}
	}
	var s float64
	for _, v := range row {
		s += math.Exp(float64(v - mx))
	}
	return mx + float32(math.Log(s))
}

// NormalizeRows scales each row of a 2-D tensor to unit L2 norm, returning
// a new tensor. Zero rows are left as zeros (the cosine kernel treats a
// zero embedding as equally dissimilar to everything).
func NormalizeRows(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor.NormalizeRows: want rank 2, have %v", a.shape))
	}
	rows, cols := a.Dim(0), a.Dim(1)
	out := New(rows, cols)
	for r := 0; r < rows; r++ {
		in := a.Data[r*cols : (r+1)*cols]
		o := out.Data[r*cols : (r+1)*cols]
		var s float64
		for _, v := range in {
			s += float64(v) * float64(v)
		}
		if s == 0 {
			continue
		}
		inv := float32(1 / math.Sqrt(s))
		for c, v := range in {
			o[c] = v * inv
		}
	}
	return out
}

// RowNorms returns the L2 norm of each row of a 2-D tensor.
func RowNorms(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor.RowNorms: want rank 2, have %v", a.shape))
	}
	rows, cols := a.Dim(0), a.Dim(1)
	out := New(rows)
	for r := 0; r < rows; r++ {
		var s float64
		for _, v := range a.Data[r*cols : (r+1)*cols] {
			s += float64(v) * float64(v)
		}
		out.Data[r] = float32(math.Sqrt(s))
	}
	return out
}

// CosineSimilarityMatrix returns the [m,n] matrix of cosine similarities
// between the rows of a[m,d] and the rows of b[n,d]. Rows with zero norm
// produce zero similarity.
func CosineSimilarityMatrix(a, b *Tensor) *Tensor {
	an := NormalizeRows(a)
	bn := NormalizeRows(b)
	return MatMulT(an, bn)
}
