// Package tensor implements a dense, row-major float32 tensor engine used
// by every other module in the repository: the neural-network stack, the
// HDC attribute encoders, the baselines, and the evaluation metrics.
//
// The design goal is a small, predictable core rather than a general
// n-dimensional broadcasting machine: shapes are explicit, operations
// panic on mismatch with a message that names the operation, and the only
// data type is float32 (the compute type used throughout the paper
// reproduction). Hyperdimensional bipolar/binary vectors live in package
// hdc; this package handles the real-valued side.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 tensor. The zero value is not usable;
// construct via New, Zeros, Full, FromSlice, or the random constructors.
type Tensor struct {
	// Data holds the elements in row-major order. It is exported so hot
	// loops (conv kernels, HDC binding) can operate on the raw slice.
	Data []float32
	// shape holds the dimension sizes. It is private so it can only change
	// through Reshape, which validates the element count.
	shape []int
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := checkShape("New", shape)
	return &Tensor{Data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// Zeros is an alias for New, named for readability at call sites that
// contrast with Ones or Full.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones allocates a tensor filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Full allocates a tensor filled with value v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); callers that need isolation should copy first.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape("FromSlice", shape)
	if n != len(data) {
		panic(fmt.Sprintf("tensor.FromSlice: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// checkShape validates a shape and returns the element count. The panic
// message formats a COPY of the shape: passing the slice itself to fmt
// would make every caller's variadic shape argument escape to the heap,
// breaking the zero-alloc contract of the arena-backed hot paths.
func checkShape(op string, shape []int) int {
	if len(shape) == 0 {
		panic("tensor." + op + ": empty shape")
	}
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor.%s: non-positive dimension in shape %v",
				op, append([]int(nil), shape...)))
		}
		n *= s
	}
	return n
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape covering the same data. The
// element count must match. The returned tensor shares Data with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape("Reshape", shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor.Reshape: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.Data), shape, n))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset("At", idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset("Set", idx)] = v }

// offset converts a multi-index into a flat offset with bounds checking.
func (t *Tensor) offset(op string, idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor.%s: index %v does not match rank of shape %v", op, idx, t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor.%s: index %v out of range for shape %v", op, idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Row returns row i of a 2-D tensor as a slice view into Data.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor.Row: want rank 2, have shape %v", t.shape))
	}
	cols := t.shape[1]
	return t.Data[i*cols : (i+1)*cols]
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// CopyFrom copies o's data into t. Shapes must match.
func (t *Tensor) CopyFrom(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor.CopyFrom: shape mismatch %v vs %v", t.shape, o.shape))
	}
	copy(t.Data, o.Data)
}

// String renders small tensors fully and large tensors as a summary; it is
// meant for debugging and test failure messages, not serialization.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.Data) <= 32 {
		b.WriteString("{")
		for i, v := range t.Data {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%.4g", v)
		}
		b.WriteString("}")
	} else {
		mn, mx := t.MinMax()
		fmt.Fprintf(&b, "{n=%d min=%.4g max=%.4g mean=%.4g}", len(t.Data), mn, mx, t.Mean())
	}
	return b.String()
}

// MinMax returns the minimum and maximum elements.
func (t *Tensor) MinMax() (float32, float32) {
	mn, mx := t.Data[0], t.Data[0]
	for _, v := range t.Data[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float32 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return float32(s / float64(len(t.Data)))
}

// Sum returns the sum of all elements (accumulated in float64).
func (t *Tensor) Sum() float32 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return float32(s)
}

// Norm returns the L2 norm of all elements viewed as one vector.
func (t *Tensor) Norm() float32 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// HasNaN reports whether any element is NaN or infinite; used by training
// loops to fail fast on divergence.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
	}
	return false
}
