package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromSliceCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice accepted wrong element count")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestRowPanicsOnNon2D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Row accepted rank-3 tensor")
		}
	}()
	New(2, 2, 2).Row(0)
}

func TestFillZeroCopyFrom(t *testing.T) {
	a := New(2, 2)
	a.Fill(3)
	for _, v := range a.Data {
		if v != 3 {
			t.Fatal("Fill failed")
		}
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Fatal("Zero failed")
	}
	b := Full(7, 2, 2)
	a.CopyFrom(b)
	if a.At(1, 1) != 7 {
		t.Fatal("CopyFrom failed")
	}
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom accepted mismatched shapes")
		}
	}()
	New(2, 2).CopyFrom(New(4))
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice([]float32{1, 2}, 2)
	if s := small.String(); s == "" {
		t.Fatal("empty String for small tensor")
	}
	rng := rand.New(rand.NewSource(1))
	large := Randn(rng, 1, 10, 10)
	if s := large.String(); s == "" {
		t.Fatal("empty String for large tensor")
	}
}

func TestApplyFunctions(t *testing.T) {
	a := FromSlice([]float32{-1, 0, 1}, 3)
	sg := Sigmoid(a)
	if math.Abs(float64(sg.Data[1])-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %v", sg.Data[1])
	}
	if sg.Data[0]+sg.Data[2] < 0.999 || sg.Data[0]+sg.Data[2] > 1.001 {
		t.Fatal("sigmoid symmetry broken")
	}
	th := Tanh(a)
	if th.Data[1] != 0 || th.Data[0] != -th.Data[2] {
		t.Fatalf("tanh values wrong: %v", th.Data)
	}
	r := ReLU(a)
	if r.Data[0] != 0 || r.Data[2] != 1 {
		t.Fatalf("relu values wrong: %v", r.Data)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	AddInPlace(a, b)
	if a.Data[1] != 22 {
		t.Fatalf("AddInPlace wrong: %v", a.Data)
	}
	ScaleInPlace(a, 0.5)
	if a.Data[0] != 5.5 {
		t.Fatalf("ScaleInPlace wrong: %v", a.Data)
	}
	ApplyInPlace(a, func(x float32) float32 { return -x })
	if a.Data[0] != -5.5 {
		t.Fatal("ApplyInPlace wrong")
	}
	c := AddScalar(a, 1)
	if c.Data[0] != -4.5 {
		t.Fatal("AddScalar wrong")
	}
}

func TestMulRowVector(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float32{2, 0, 1}, 3)
	got := MulRowVector(a, v)
	want := []float32{2, 0, 3, 8, 0, 6}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("MulRowVector[%d] = %v, want %v", i, got.Data[i], want[i])
		}
	}
}

func TestLogSumExpRow(t *testing.T) {
	a := FromSlice([]float32{0, 0, 0}, 1, 3)
	if got := LogSumExpRow(a, 0); math.Abs(float64(got)-math.Log(3)) > 1e-5 {
		t.Fatalf("LSE = %v, want ln 3", got)
	}
	// Stability under large values.
	b := FromSlice([]float32{1000, 1000}, 1, 2)
	got := LogSumExpRow(b, 0)
	if math.IsInf(float64(got), 0) || math.IsNaN(float64(got)) {
		t.Fatal("LSE overflowed")
	}
	if math.Abs(float64(got)-(1000+float32Log2())) > 1e-2 {
		t.Fatalf("LSE = %v, want 1000+ln2", got)
	}
}

func float32Log2() float64 { return math.Log(2) }

func TestAddDiagonalPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddDiagonal accepted non-square")
		}
	}()
	AddDiagonal(New(2, 3), 1)
}

func TestFrobeniusNormMatchesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 3, 4)
	if FrobeniusNorm(a) != a.Norm() {
		t.Fatal("FrobeniusNorm diverges from Norm")
	}
}

func TestRowNormsValues(t *testing.T) {
	a := FromSlice([]float32{3, 4, 0, 0}, 2, 2)
	n := RowNorms(a)
	if n.Data[0] != 5 || n.Data[1] != 0 {
		t.Fatalf("RowNorms wrong: %v", n.Data)
	}
}

func TestHeXavierInitScales(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := HeInit(rng, 100, 100, 100)
	// Sample std should be near sqrt(2/100) ≈ 0.1414.
	var s float64
	for _, v := range h.Data {
		s += float64(v) * float64(v)
	}
	std := math.Sqrt(s / float64(h.Len()))
	if std < 0.12 || std > 0.17 {
		t.Fatalf("He init std %v, want ≈0.141", std)
	}
	x := XavierInit(rng, 50, 50, 50, 50)
	bound := math.Sqrt(6.0 / 100)
	mn, mx := x.MinMax()
	if float64(mn) < -bound-1e-6 || float64(mx) > bound+1e-6 {
		t.Fatalf("Xavier init out of bounds: [%v, %v] vs ±%v", mn, mx, bound)
	}
}

// Property: softmax is invariant to adding a constant to a row.
func TestPropertySoftmaxShiftInvariant(t *testing.T) {
	f := func(seed int64, shift float32) bool {
		if math.IsNaN(float64(shift)) || math.Abs(float64(shift)) > 100 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		a := Randn(rng, 1, 2, 5)
		b := AddScalar(a, shift)
		sa, sb := SoftmaxRows(a), SoftmaxRows(b)
		for i := range sa.Data {
			if math.Abs(float64(sa.Data[i]-sb.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖a‖² equals Dot(a, a) for rank-1 tensors.
func TestPropertyNormDotConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(32)
		a := Randn(rng, 1, n)
		nrm := float64(a.Norm())
		dot := float64(Dot(a, a))
		if math.Abs(nrm*nrm-dot) > 1e-3*math.Max(1, dot) {
			t.Fatalf("‖a‖²=%v vs dot=%v", nrm*nrm, dot)
		}
	}
}

// Property: CholeskySolve and SolveLinear agree on SPD systems.
func TestPropertySolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(6)
		m := Randn(rng, 1, n, n)
		a := MatMulT(m, m)
		AddDiagonal(a, 2)
		b := Randn(rng, 1, n, 2)
		x1, err1 := SolveSPD(a.Clone(), b)
		x2, err2 := SolveLinear(a.Clone(), b)
		if err1 != nil || err2 != nil {
			t.Fatalf("solver errors: %v %v", err1, err2)
		}
		for i := range x1.Data {
			if math.Abs(float64(x1.Data[i]-x2.Data[i])) > 1e-2 {
				t.Fatalf("solvers disagree at %d: %v vs %v", i, x1.Data[i], x2.Data[i])
			}
		}
	}
}
