package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float32) bool {
	return float32(math.Abs(float64(a-b))) <= eps
}

func TestNewShapeAndLen(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 {
		t.Fatalf("Len = %d, want 24", a.Len())
	}
	if a.Rank() != 3 || a.Dim(0) != 2 || a.Dim(1) != 3 || a.Dim(2) != 4 {
		t.Fatalf("bad shape %v", a.Shape())
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4)
	a.Set(7.5, 2, 3)
	if got := a.At(2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if a.Data[2*4+3] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	_ = a.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(99, 0, 0)
	if a.At(0, 0) != 99 {
		t.Fatal("Reshape must share underlying data")
	}
}

func TestReshapePanicsOnCountMismatch(t *testing.T) {
	a := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape with wrong count did not panic")
		}
	}()
	a.Reshape(4, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 42
	if a.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{4, 3, 2, 1}, 2, 2)
	if got := Add(a, b).Data; got[0] != 5 || got[3] != 5 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(a, b).Data; got[0] != -3 || got[3] != 3 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 6 || got[2] != 6 {
		t.Fatalf("Mul wrong: %v", got)
	}
	if got := Div(a, b).Data; got[3] != 4 {
		t.Fatalf("Div wrong: %v", got)
	}
	if got := Scale(a, 2).Data; got[3] != 8 {
		t.Fatalf("Scale wrong: %v", got)
	}
}

func TestBinOpShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	Add(New(2, 2), New(2, 3))
}

func TestAddRowVector(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float32{10, 20, 30}, 3)
	got := AddRowVector(a, v)
	want := []float32{11, 22, 33, 14, 25, 36}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("AddRowVector[%d] = %v, want %v", i, got.Data[i], want[i])
		}
	}
}

func TestMatMulHandComputed(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, got.Data[i], want[i])
		}
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 5, 7)
	b := Randn(rng, 1, 4, 7)
	got := MatMulT(a, b)
	want := MatMul(a, Transpose2D(b))
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("MatMulT[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTMatMulMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 6, 3)
	b := Randn(rng, 1, 6, 4)
	got := TMatMul(a, b)
	want := MatMul(Transpose2D(a), b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("TMatMul[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulBlockedLargerThanBlockSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := blockSize+5, blockSize+3, blockSize+7
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	got := MatMul(a, b)
	// Naive reference.
	for i := 0; i < m; i += 17 {
		for j := 0; j < n; j += 13 {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.Data[i*k+p]) * float64(b.Data[p*n+j])
			}
			if !almostEq(got.Data[i*n+j], float32(s), 1e-2) {
				t.Fatalf("blocked MatMul diverges at (%d,%d): %v vs %v", i, j, got.Data[i*n+j], s)
			}
		}
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose2D(a)
	if got.Dim(0) != 3 || got.Dim(1) != 2 {
		t.Fatalf("bad transpose shape %v", got.Shape())
	}
	if got.At(2, 1) != 6 || got.At(0, 1) != 4 {
		t.Fatalf("bad transpose values: %v", got.Data)
	}
}

func TestMatVecAndDot(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float32{1, -1}, 2)
	got := MatVec(a, v)
	if got.Data[0] != -1 || got.Data[1] != -1 {
		t.Fatalf("MatVec wrong: %v", got.Data)
	}
	if Dot(v, v) != 2 {
		t.Fatalf("Dot wrong: %v", Dot(v, v))
	}
}

func TestSumRowsColsMeans(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if sr := SumRows(a); sr.Data[0] != 6 || sr.Data[1] != 15 {
		t.Fatalf("SumRows wrong: %v", sr.Data)
	}
	if sc := SumCols(a); sc.Data[0] != 5 || sc.Data[2] != 9 {
		t.Fatalf("SumCols wrong: %v", sc.Data)
	}
	if mc := MeanCols(a); !almostEq(mc.Data[1], 3.5, 1e-6) {
		t.Fatalf("MeanCols wrong: %v", mc.Data)
	}
}

func TestArgMaxAndTopK(t *testing.T) {
	a := FromSlice([]float32{0.1, 0.9, 0.5, 0.7, 0.2, 0.6}, 2, 3)
	am := ArgMax(a)
	if am[0] != 1 || am[1] != 0 {
		t.Fatalf("ArgMax wrong: %v", am)
	}
	top := TopKRow(a, 1, 2)
	if top[0] != 0 || top[1] != 2 {
		t.Fatalf("TopKRow wrong: %v", top)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Randn(rng, 3, 5, 9)
	sm := SoftmaxRows(a)
	for r := 0; r < 5; r++ {
		var s float32
		for _, v := range sm.Row(r) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			s += v
		}
		if !almostEq(s, 1, 1e-5) {
			t.Fatalf("softmax row %d sums to %v", r, s)
		}
	}
}

func TestSoftmaxStableUnderLargeLogits(t *testing.T) {
	a := FromSlice([]float32{1000, 1001, 999}, 1, 3)
	sm := SoftmaxRows(a)
	if sm.HasNaN() {
		t.Fatal("softmax overflowed on large logits")
	}
	if sm.At(0, 1) <= sm.At(0, 0) {
		t.Fatal("softmax ordering broken")
	}
}

func TestNormalizeRowsUnitNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Randn(rng, 2, 4, 8)
	n := NormalizeRows(a)
	for r := 0; r < 4; r++ {
		var s float64
		for _, v := range n.Row(r) {
			s += float64(v) * float64(v)
		}
		if !almostEq(float32(s), 1, 1e-4) {
			t.Fatalf("row %d norm² = %v, want 1", r, s)
		}
	}
}

func TestNormalizeRowsZeroRowStaysZero(t *testing.T) {
	a := New(2, 3)
	a.Set(1, 1, 0)
	n := NormalizeRows(a)
	for _, v := range n.Row(0) {
		if v != 0 {
			t.Fatal("zero row must stay zero, not become NaN")
		}
	}
}

func TestCosineSimilarityMatrixSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Randn(rng, 1, 3, 16)
	cs := CosineSimilarityMatrix(a, a)
	for i := 0; i < 3; i++ {
		if !almostEq(cs.At(i, i), 1, 1e-4) {
			t.Fatalf("self-similarity [%d] = %v, want 1", i, cs.At(i, i))
		}
	}
}

func TestCholeskySolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Build SPD matrix A = M·Mᵀ + I.
	m := Randn(rng, 1, 6, 6)
	a := MatMulT(m, m)
	AddDiagonal(a, 1)
	x := Randn(rng, 1, 6, 2)
	b := MatMul(a, x)
	got, err := SolveSPD(a, b)
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	for i := range x.Data {
		if !almostEq(got.Data[i], x.Data[i], 1e-2) {
			t.Fatalf("SolveSPD[%d] = %v, want %v", i, got.Data[i], x.Data[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromSlice([]float32{0, 1, 1, 0}, 2, 2)
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestSolveLinearRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := Randn(rng, 1, 5, 5)
	AddDiagonal(a, 3) // keep it well-conditioned
	x := Randn(rng, 1, 5, 3)
	b := MatMul(a, x)
	got, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	for i := range x.Data {
		if !almostEq(got.Data[i], x.Data[i], 1e-2) {
			t.Fatalf("SolveLinear[%d] = %v, want %v", i, got.Data[i], x.Data[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := New(3, 3) // all-zero matrix is singular
	b := Ones(3, 1)
	if _, err := SolveLinear(a, b); err == nil {
		t.Fatal("SolveLinear accepted a singular matrix")
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	if e.At(0, 0) != 1 || e.At(1, 1) != 1 || e.At(0, 1) != 0 {
		t.Fatalf("Eye wrong: %v", e.Data)
	}
}

func TestRademacherOnlyPlusMinusOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := Rademacher(rng, 1000)
	var pos int
	for _, v := range r.Data {
		if v != 1 && v != -1 {
			t.Fatalf("Rademacher produced %v", v)
		}
		if v == 1 {
			pos++
		}
	}
	// Balanced within 5 sigma.
	if pos < 380 || pos > 620 {
		t.Fatalf("Rademacher badly unbalanced: %d/1000 positive", pos)
	}
}

func TestSignAndClamp(t *testing.T) {
	a := FromSlice([]float32{-2, 0, 3}, 3)
	s := Sign(a)
	if s.Data[0] != -1 || s.Data[1] != 0 || s.Data[2] != 1 {
		t.Fatalf("Sign wrong: %v", s.Data)
	}
	c := Clamp(a, -1, 1)
	if c.Data[0] != -1 || c.Data[2] != 1 {
		t.Fatalf("Clamp wrong: %v", c.Data)
	}
}

func TestHasNaN(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	if a.HasNaN() {
		t.Fatal("false NaN")
	}
	a.Data[1] = float32(math.NaN())
	if !a.HasNaN() {
		t.Fatal("missed NaN")
	}
	a.Data[1] = float32(math.Inf(1))
	if !a.HasNaN() {
		t.Fatal("missed Inf")
	}
}

// Property: (a+b)-b == a for finite inputs.
func TestPropertyAddSubInverse(t *testing.T) {
	f := func(vals [8]float32) bool {
		for _, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e6 {
				return true // skip pathological inputs
			}
		}
		a := FromSlice(append([]float32(nil), vals[:4]...), 4)
		b := FromSlice(append([]float32(nil), vals[4:]...), 4)
		back := Sub(Add(a, b), b)
		for i := range a.Data {
			if !almostEq(back.Data[i], a.Data[i], 1e-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestPropertyTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := Randn(rng, 1, m, n)
		b := Transpose2D(Transpose2D(a))
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("transpose involution broken at trial %d", trial)
			}
		}
	}
}

// Property: cosine similarity is bounded in [-1, 1].
func TestPropertyCosineBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		a := Randn(rng, 2, 3, 12)
		b := Randn(rng, 2, 4, 12)
		cs := CosineSimilarityMatrix(a, b)
		for _, v := range cs.Data {
			if v < -1.0001 || v > 1.0001 {
				t.Fatalf("cosine out of bounds: %v", v)
			}
		}
	}
}

// Property: matmul distributes over addition: A(B+C) = AB + AC.
func TestPropertyMatMulDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		a := Randn(rng, 1, 4, 5)
		b := Randn(rng, 1, 5, 3)
		c := Randn(rng, 1, 5, 3)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], rhs.Data[i], 1e-3) {
				t.Fatalf("distributivity broken: %v vs %v", lhs.Data[i], rhs.Data[i])
			}
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 128, 128)
	y := Randn(rng, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkCosineSimilarity(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 32, 1536)
	y := Randn(rng, 1, 200, 1536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CosineSimilarityMatrix(x, y)
	}
}
