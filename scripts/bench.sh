#!/bin/sh
# bench.sh — run the root benchmark suite and archive the results as
# machine-readable JSON (via cmd/benchjson), so the perf trajectory is
# tracked PR over PR.
#
#   ./scripts/bench.sh                          # default pattern → BENCH_pr8.json
#   ./scripts/bench.sh 'EndToEndClassify' out.json
#   BENCHTIME=5x ./scripts/bench.sh             # more iterations
#   BASELINE=BENCH_pr6.json ./scripts/bench.sh  # + per-benchmark delta table,
#                                               # non-zero exit on >25% regression
set -eu
cd "$(dirname "$0")/.."

pattern="${1:-EndToEndClassify|CompiledInfer|QuantizedInfer|GEMM$|Gemm8$|EngineBatchedQuery|EngineBatch32RawQuery|ServeCoalesced|ItemMemoryPerProbeScan|EngineFloatBackend|DistScatterGather}"
out="${2:-BENCH_pr8.json}"

# Capture the bench run in a temp file first so a mid-run failure fails
# the script (a plain pipe would discard go test's exit status).
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test . -run '^$' -bench "$pattern" -benchtime "${BENCHTIME:-1x}" -timeout 30m >"$raw"
go run ./cmd/benchjson <"$raw" >"$out"
echo "wrote $out"

# Optional regression gate against an archived baseline report.
if [ -n "${BASELINE:-}" ]; then
  go run ./cmd/benchjson -baseline "$BASELINE" -json <"$out"
fi
