#!/usr/bin/env bash
# lint.sh — the repository's static-analysis gate, shared verbatim by CI
# and local runs:
#
#   ./scripts/lint.sh
#
# Always runs hdclint (the in-tree analyzer suite enforcing the
# hot-path contracts; see internal/analysis) through the `go vet
# -vettool` driver, so suppressions and findings behave identically in
# both modes. staticcheck and govulncheck run when present on PATH (CI
# installs pinned versions; a local machine without them gets a notice,
# not a failure).
set -euo pipefail
cd "$(dirname "$0")/.."

tools="$(mktemp -d)"
trap 'rm -rf "$tools"' EXIT

echo "==> hdclint (go vet -vettool)"
go build -o "$tools/hdclint" ./cmd/hdclint
go vet -vettool="$tools/hdclint" ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "==> staticcheck"
  staticcheck ./...
else
  echo "==> staticcheck not installed; skipping (CI runs it pinned)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "==> govulncheck"
  govulncheck ./...
else
  echo "==> govulncheck not installed; skipping (CI runs it pinned)"
fi

echo "==> lint clean"
