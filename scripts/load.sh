#!/bin/sh
# load.sh — open-loop serving-latency smoke: start a local hdcserve,
# offer Poisson traffic with cmd/hdcload, and archive the latency/
# goodput report as machine-readable JSON (BENCH_load.json), so the
# serving-latency trajectory is tracked PR over PR alongside the
# compute benchmarks (scripts/bench.sh).
#
#   ./scripts/load.sh                    # → BENCH_load.json
#   ./scripts/load.sh out.json
#   RATE=5000 DURATION=10s ./scripts/load.sh
#
# The serving geometry is fixed (classes, d, seed, coalescer policy) so
# reports stay comparable across runs. The default rate is modest —
# client and server share one host here, so an aggressive rate measures
# host CPU contention, not the serving stack; raise RATE to probe the
# overload/shedding regime deliberately.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_load.json}"
rate="${RATE:-500}"
duration="${DURATION:-5s}"
# A small live-enrollment fraction rides along by default, so the
# tracked latency numbers always include epoch flips happening under
# traffic (set ENROLL_FRAC=0 for a frozen-memory run).
enroll_frac="${ENROLL_FRAC:-0.002}"

tmp="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/hdcserve" ./cmd/hdcserve
go build -o "$tmp/hdcload" ./cmd/hdcload

"$tmp/hdcserve" \
  -addr 127.0.0.1:0 \
  -backends binary \
  -embedder=false \
  -classes 128 -d 1024 -seed 1 \
  -max-batch 32 -max-delay 2ms \
  2>"$tmp/serve.log" &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
  addr="$(sed -n 's/.*listening on //p' "$tmp/serve.log" | head -n 1)"
  [ -n "$addr" ] && break
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$addr" ]; then
  echo "hdcserve never reported a listening address:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

"$tmp/hdcload" -addr "$addr" -model binary -rate "$rate" -duration "$duration" \
  -enroll-frac "$enroll_frac" -out "$out"
echo "wrote $out"
